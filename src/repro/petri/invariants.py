"""Place invariants (P-semiflows) of a Petri net.

SM-components of live and safe free-choice nets correspond to minimal place
semiflows with 0/1 coefficients whose induced subnet is a strongly connected
state machine (Hack's theorem, referenced in Section II-B).  This module
computes minimal semiflows with the classic Farkas / Fourier–Motzkin
elimination on the incidence matrix, which the SM-cover computation then
filters.
"""

from __future__ import annotations

from collections.abc import Sequence
from math import gcd
from typing import Optional

from repro.petri.net import PetriNet


def incidence_matrix(net: PetriNet) -> tuple[list[str], list[str], list[list[int]]]:
    """The incidence matrix C (places x transitions) of the net.

    ``C[p][t] = F(t, p) - F(p, t)`` for the arc-weight-1 nets used here.
    """
    places = net.places
    transitions = net.transitions
    place_index = {p: i for i, p in enumerate(places)}
    matrix = [[0] * len(transitions) for _ in places]
    for j, transition in enumerate(transitions):
        for place in net.preset(transition):
            matrix[place_index[place]][j] -= 1
        for place in net.postset(transition):
            matrix[place_index[place]][j] += 1
    return places, transitions, matrix


def _normalize(vector: Sequence[int]) -> tuple[int, ...]:
    divisor = 0
    for value in vector:
        divisor = gcd(divisor, value)
    if divisor in (0, 1):
        return tuple(vector)
    return tuple(value // divisor for value in vector)


def place_invariants(
    net: PetriNet,
    max_rows: Optional[int] = 200_000,
) -> list[dict[str, int]]:
    """All minimal-support non-negative place invariants (P-semiflows).

    Implements the Farkas algorithm: starting from ``[C | I]``, transitions
    (columns of C) are eliminated one at a time by combining rows with
    positive and negative entries; rows with non-minimal support are pruned
    after every elimination step.

    Parameters
    ----------
    max_rows:
        Safety bound on the intermediate row count (raises ``RuntimeError``
        when exceeded), protecting the scalable benchmarks from pathological
        blow-up.

    The result is memoised on the net keyed by its structural ``_version``
    (and the ``max_rows`` bound), so the repeated refinement queries of the
    SM-cover search (:func:`repro.petri.smcover.find_sm_component_containing`
    callers re-enter here once per uncovered place) reuse one Farkas fixed
    point.  Callers receive fresh dicts; the cached rows are never exposed.
    """
    version = getattr(net, "_version", None)
    cache_key = (version, max_rows)
    cached = getattr(net, "_invariants_cache", None)
    if cached is not None and cached[0] == cache_key:
        return [dict(invariant) for invariant in cached[1]]
    invariants = _compute_place_invariants(net, max_rows)
    try:
        net._invariants_cache = (cache_key, invariants)
    except AttributeError:
        pass  # net-like object without attribute support; skip caching
    return [dict(invariant) for invariant in invariants]


def _compute_place_invariants(
    net: PetriNet,
    max_rows: Optional[int],
) -> list[dict[str, int]]:
    """Uncached Farkas elimination (see :func:`place_invariants`)."""
    places, transitions, matrix = incidence_matrix(net)
    num_places = len(places)
    num_transitions = len(transitions)
    # Rows: [C_row | identity_row | support mask of the identity part].
    # Rows are only ever combined with positive factors and the invariant
    # parts are non-negative, so supports never cancel: the support mask of a
    # combination is the union of the parents' masks and can be carried
    # incrementally instead of being recomputed from the vectors.
    rows: list[tuple[tuple[int, ...], tuple[int, ...], int]] = []
    for i in range(num_places):
        identity = tuple(1 if j == i else 0 for j in range(num_places))
        rows.append((tuple(matrix[i]), identity, 1 << i))

    for column in range(num_transitions):
        positive = [row for row in rows if row[0][column] > 0]
        negative = [row for row in rows if row[0][column] < 0]
        base: list[tuple[tuple[int, ...], tuple[int, ...], int]] = [
            row for row in rows if row[0][column] == 0
        ]
        fresh: list[tuple[tuple[int, ...], tuple[int, ...], int]] = []
        for c_pos, inv_pos, mask_pos in positive:
            for c_neg, inv_neg, mask_neg in negative:
                factor_pos = -c_neg[column]
                factor_neg = c_pos[column]
                new_c = tuple(
                    factor_pos * a + factor_neg * b for a, b in zip(c_pos, c_neg)
                )
                new_inv = tuple(
                    factor_pos * a + factor_neg * b for a, b in zip(inv_pos, inv_neg)
                )
                merged = _normalize(new_c + new_inv)
                fresh.append(
                    (merged[:num_transitions], merged[num_transitions:], mask_pos | mask_neg)
                )
        # prune rows with non-minimal support (on the invariant part)
        combined = _prune_combined(base, fresh)
        if max_rows is not None and len(combined) > max_rows:
            raise RuntimeError(
                f"Farkas elimination exceeded {max_rows} intermediate rows"
            )
        rows = combined

    invariants: list[dict[str, int]] = []
    seen: set[tuple[int, ...]] = set()
    for c_part, inv_part, _ in rows:
        if any(value != 0 for value in c_part):
            continue
        if all(value == 0 for value in inv_part):
            continue
        normalized = _normalize(inv_part)
        if normalized in seen:
            continue
        seen.add(normalized)
        invariants.append(
            {places[i]: value for i, value in enumerate(normalized) if value}
        )
    return invariants


def _prune_combined(
    base: list[tuple[tuple[int, ...], tuple[int, ...], int]],
    fresh: list[tuple[tuple[int, ...], tuple[int, ...], int]],
) -> list[tuple[tuple[int, ...], tuple[int, ...], int]]:
    """Remove rows whose invariant support strictly contains another row's.

    ``base`` rows are the output of the previous elimination step, so they
    are already mutually support-minimal and support-distinct: a base row can
    only be dominated by a *fresh* row, and a fresh row by any row.  This
    cuts the pruning cost from quadratic in ``|base| + |fresh|`` to
    ``O(|base|·|fresh| + |fresh|²)`` bitmask comparisons.
    """
    if not fresh:
        return base
    fresh_masks = [mask for _, _, mask in fresh]
    kept: list[tuple[tuple[int, ...], tuple[int, ...], int]] = []
    base_masks: list[int] = []
    for row in base:
        support = row[2]
        dominated = False
        for other in fresh_masks:
            # other is a (strict) subset of support
            if not other & ~support and other != support:
                dominated = True
                break
        if not dominated:
            kept.append(row)
            base_masks.append(support)
    for index, row in enumerate(fresh):
        support = fresh_masks[index]
        dominated = False
        for other in base_masks:
            if not other & ~support:  # subset or equal: base wins dedupe
                dominated = True
                break
        if not dominated:
            for j, other in enumerate(fresh_masks):
                if j == index:
                    continue
                if not other & ~support and (other != support or j < index):
                    dominated = True
                    break
        if not dominated:
            kept.append(row)
    return kept


def minimal_place_invariants(net: PetriNet) -> list[frozenset[str]]:
    """Supports of the minimal P-semiflows."""
    return [frozenset(inv) for inv in place_invariants(net)]


def is_covered_by_invariants(net: PetriNet, invariants: list[dict[str, int]]) -> bool:
    """True if every place appears in the support of some invariant."""
    covered: set[str] = set()
    for invariant in invariants:
        covered.update(invariant)
    return covered >= set(net.places)


def token_count_of_invariant(net: PetriNet, invariant: dict[str, int]) -> int:
    """Weighted token count of the initial marking over an invariant.

    This count is preserved by every firing; for a one-token SM-component it
    equals 1.
    """
    marking = net.initial_marking
    return sum(weight * marking[place] for place, weight in invariant.items())
