"""Place invariants (P-semiflows) of a Petri net.

SM-components of live and safe free-choice nets correspond to minimal place
semiflows with 0/1 coefficients whose induced subnet is a strongly connected
state machine (Hack's theorem, referenced in Section II-B).  This module
computes minimal semiflows with the classic Farkas / Fourier–Motzkin
elimination on the incidence matrix, which the SM-cover computation then
filters.
"""

from __future__ import annotations

from collections.abc import Sequence
from math import gcd
from typing import Optional

from repro.petri.net import PetriNet


def incidence_matrix(net: PetriNet) -> tuple[list[str], list[str], list[list[int]]]:
    """The incidence matrix C (places x transitions) of the net.

    ``C[p][t] = F(t, p) - F(p, t)`` for the arc-weight-1 nets used here.
    """
    places = net.places
    transitions = net.transitions
    place_index = {p: i for i, p in enumerate(places)}
    matrix = [[0] * len(transitions) for _ in places]
    for j, transition in enumerate(transitions):
        for place in net.preset(transition):
            matrix[place_index[place]][j] -= 1
        for place in net.postset(transition):
            matrix[place_index[place]][j] += 1
    return places, transitions, matrix


def _normalize(vector: Sequence[int]) -> tuple[int, ...]:
    divisor = 0
    for value in vector:
        divisor = gcd(divisor, value)
    if divisor in (0, 1):
        return tuple(vector)
    return tuple(value // divisor for value in vector)


def _support(vector: Sequence[int]) -> frozenset[int]:
    return frozenset(i for i, value in enumerate(vector) if value)


def place_invariants(
    net: PetriNet,
    max_rows: Optional[int] = 200_000,
) -> list[dict[str, int]]:
    """All minimal-support non-negative place invariants (P-semiflows).

    Implements the Farkas algorithm: starting from ``[C | I]``, transitions
    (columns of C) are eliminated one at a time by combining rows with
    positive and negative entries; rows with non-minimal support are pruned
    after every elimination step.

    Parameters
    ----------
    max_rows:
        Safety bound on the intermediate row count (raises ``RuntimeError``
        when exceeded), protecting the scalable benchmarks from pathological
        blow-up.
    """
    places, transitions, matrix = incidence_matrix(net)
    num_places = len(places)
    num_transitions = len(transitions)
    # Rows: [C_row | identity_row]
    rows: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
    for i in range(num_places):
        identity = tuple(1 if j == i else 0 for j in range(num_places))
        rows.append((tuple(matrix[i]), identity))

    for column in range(num_transitions):
        positive = [row for row in rows if row[0][column] > 0]
        negative = [row for row in rows if row[0][column] < 0]
        zero = [row for row in rows if row[0][column] == 0]
        combined: list[tuple[tuple[int, ...], tuple[int, ...]]] = list(zero)
        for c_pos, inv_pos in positive:
            for c_neg, inv_neg in negative:
                factor_pos = -c_neg[column]
                factor_neg = c_pos[column]
                new_c = tuple(
                    factor_pos * a + factor_neg * b for a, b in zip(c_pos, c_neg)
                )
                new_inv = tuple(
                    factor_pos * a + factor_neg * b for a, b in zip(inv_pos, inv_neg)
                )
                merged = _normalize(new_c + new_inv)
                combined.append((merged[:num_transitions], merged[num_transitions:]))
        # prune rows with non-minimal support (on the invariant part)
        combined = _prune_non_minimal(combined)
        if max_rows is not None and len(combined) > max_rows:
            raise RuntimeError(
                f"Farkas elimination exceeded {max_rows} intermediate rows"
            )
        rows = combined

    invariants: list[dict[str, int]] = []
    seen: set[tuple[int, ...]] = set()
    for c_part, inv_part in rows:
        if any(value != 0 for value in c_part):
            continue
        if all(value == 0 for value in inv_part):
            continue
        normalized = _normalize(inv_part)
        if normalized in seen:
            continue
        seen.add(normalized)
        invariants.append(
            {places[i]: value for i, value in enumerate(normalized) if value}
        )
    return invariants


def _prune_non_minimal(
    rows: list[tuple[tuple[int, ...], tuple[int, ...]]],
) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
    """Remove rows whose invariant support strictly contains another row's."""
    supports = [_support(inv) for _, inv in rows]
    keep: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
    kept_supports: list[frozenset[int]] = []
    order = sorted(range(len(rows)), key=lambda i: len(supports[i]))
    selected: set[int] = set()
    for index in order:
        support = supports[index]
        if any(other <= support and other != support for other in kept_supports):
            continue
        if support in kept_supports:
            continue
        kept_supports.append(support)
        selected.add(index)
    for index in sorted(selected):
        keep.append(rows[index])
    return keep


def minimal_place_invariants(net: PetriNet) -> list[frozenset[str]]:
    """Supports of the minimal P-semiflows."""
    return [frozenset(inv) for inv in place_invariants(net)]


def is_covered_by_invariants(net: PetriNet, invariants: list[dict[str, int]]) -> bool:
    """True if every place appears in the support of some invariant."""
    covered: set[str] = set()
    for invariant in invariants:
        covered.update(invariant)
    return covered >= set(net.places)


def token_count_of_invariant(net: PetriNet, invariant: dict[str, int]) -> int:
    """Weighted token count of the initial marking over an invariant.

    This count is preserved by every firing; for a one-token SM-component it
    equals 1.
    """
    marking = net.initial_marking
    return sum(weight * marking[place] for place, weight in invariant.items())
