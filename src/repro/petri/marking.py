"""Markings: multisets of tokens over places.

Only places holding at least one token are stored, so markings of large but
safe nets stay compact and hashable (they are used as reachability-graph
vertices).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping


class Marking(Mapping[str, int]):
    """An immutable assignment of non-negative token counts to places."""

    __slots__ = ("_tokens", "_hash")

    def __init__(self, tokens: Mapping[str, int] | Iterable[tuple[str, int]] | Iterable[str] = ()):
        if isinstance(tokens, Mapping):
            items = dict(tokens)
        else:
            tokens = list(tokens)
            if tokens and isinstance(tokens[0], str):
                items = {place: 1 for place in tokens}  # type: ignore[union-attr]
            else:
                items = dict(tokens)  # type: ignore[arg-type]
        cleaned: dict[str, int] = {}
        for place, count in items.items():
            if count < 0:
                raise ValueError(f"negative token count for place {place!r}")
            if count > 0:
                cleaned[place] = count
        self._tokens = cleaned
        self._hash: int | None = None

    @classmethod
    def from_marked(cls, places: Iterable[str]) -> "Marking":
        """Fast constructor for a safe marking given its marked places.

        Skips the validation loop of ``__init__``; used by the compiled
        kernel when unpacking bit-packed markings at the API boundary.
        """
        self = cls.__new__(cls)
        self._tokens = {place: 1 for place in places}
        self._hash = None
        return self

    # ------------------------------------------------------------------ #
    # Mapping protocol
    # ------------------------------------------------------------------ #

    def __getitem__(self, place: str) -> int:
        return self._tokens.get(place, 0)

    def __iter__(self) -> Iterator[str]:
        return iter(self._tokens)

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, place: object) -> bool:
        return place in self._tokens

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._tokens.items()))
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Marking):
            return self._tokens == other._tokens
        if isinstance(other, Mapping):
            return self._tokens == {p: c for p, c in other.items() if c}
        return NotImplemented

    def __repr__(self) -> str:
        if not self._tokens:
            return "Marking()"
        body = ", ".join(
            (place if count == 1 else f"{place}:{count}")
            for place, count in sorted(self._tokens.items())
        )
        return f"Marking({body})"

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def marked_places(self) -> frozenset[str]:
        """The set of places holding at least one token."""
        return frozenset(self._tokens)

    def tokens(self, place: str) -> int:
        """Token count of a place (0 if unmarked)."""
        return self._tokens.get(place, 0)

    def total_tokens(self) -> int:
        """Total number of tokens in the marking."""
        return sum(self._tokens.values())

    def marks_all(self, places: Iterable[str]) -> bool:
        """True if every place in ``places`` carries at least one token."""
        return all(self._tokens.get(place, 0) > 0 for place in places)

    def marks_any(self, places: Iterable[str]) -> bool:
        """True if some place in ``places`` carries at least one token."""
        return any(self._tokens.get(place, 0) > 0 for place in places)

    def is_safe(self) -> bool:
        """True if no place carries more than one token."""
        return all(count <= 1 for count in self._tokens.values())

    def to_dict(self) -> dict[str, int]:
        """A mutable copy of the token mapping."""
        return dict(self._tokens)

    def to_key(self) -> frozenset[str]:
        """Canonical key for safe markings (the set of marked places)."""
        return frozenset(self._tokens)
