"""Bit-packed compiled kernel for safe Petri nets.

This module is the machine-level core that every hot reachability path runs
on.  A :class:`CompiledNet` freezes the structure of a
:class:`~repro.petri.net.PetriNet` — the ``(P, T, F)`` part of the paper's
``(P, T, F, m0)`` four-tuple (Section II-B) — into integer masks over an
interned place order:

``pre_masks[t]``
    Bit ``i`` is set iff place ``i`` is an input place of transition ``t``
    (the preset ``•t`` restricted to places).
``post_masks[t]``
    Bit ``i`` is set iff place ``i`` is an output place of ``t`` (``t•``).
``deltas[t]``
    ``pre_masks[t] ^ post_masks[t]`` — the places whose token count changes
    when ``t`` fires (self-loop places, ``•t ∩ t•``, keep their token).

A marking ``m`` of a *safe* net is then a plain ``int`` with bit ``i`` set
iff place ``i`` is marked, and the token-flow semantics collapses to:

``is_enabled(t, m)``  ==  ``m & pre_masks[t] == pre_masks[t]``
``fire(t, m)``        ==  ``(m & ~pre_masks[t]) | post_masks[t]``

(the reference semantics of ``PetriNet.is_enabled`` / ``PetriNet.fire`` for
1-bounded markings).  Firing a transition whose output place is already
marked would create a second token; the kernel detects this and raises
:class:`UnsafeNetError`, at which point callers fall back to the dict-based
reference path, so unsafe nets keep the exact multiset semantics.

Reachability exploration additionally maintains the enabled set of each
marking incrementally ("dirty-frontier"): when ``t`` fires, only transitions
adjacent to the changed places (``consumer_masks`` over ``deltas[t]``) can
change their enabled status, so the per-successor work is proportional to
the local fan-out instead of ``|T|``.
"""

from __future__ import annotations

from typing import Optional

from repro.petri.marking import Marking
from repro.petri.net import PetriNet


class UnsafeNetError(RuntimeError):
    """Raised when a marking cannot be represented as one bit per place.

    Either the starting marking carries multiple tokens on a place (or tokens
    on places unknown to the net), or exploration fired a transition into an
    already-marked output place.  Callers catch this and fall back to the
    k-bounded kernel (:class:`CompiledBoundedNet`) and ultimately to the
    dict-based reference semantics.
    """


class BoundExceededError(UnsafeNetError):
    """Raised when a token count overflows the k-bit place fields.

    Either the starting marking already carries more than ``capacity``
    tokens on a place, or exploration fired a transition that would push a
    place past it.  Callers catch this and retry with wider fields (or fall
    back to the dict-based reference semantics, which is unbounded).
    """


class StateSpaceLimitExceeded(RuntimeError):
    """Raised when reachability exploration exceeds the marking limit."""


class CompiledNet:
    """Bit-packed read-only view of a Petri net.

    The compiled form is cached on the net keyed by its structural version,
    so repeated analyses of the same net compile once (see
    :func:`compile_net`).
    """

    __slots__ = (
        "net",
        "place_names",
        "place_index",
        "transition_names",
        "transition_index",
        "pre_masks",
        "post_masks",
        "deltas",
        "_not_pre",
        "_post_only",
        "_affected",
    )

    def __init__(self, net: PetriNet):
        self.net = net
        self.place_names: list[str] = net.places
        self.place_index: dict[str, int] = {
            name: i for i, name in enumerate(self.place_names)
        }
        self.transition_names: list[str] = net.transitions
        self.transition_index: dict[str, int] = {
            name: i for i, name in enumerate(self.transition_names)
        }
        place_index = self.place_index
        pre_masks: list[int] = []
        post_masks: list[int] = []
        for transition in self.transition_names:
            pre = 0
            for place in net.preset(transition):
                pre |= 1 << place_index[place]
            post = 0
            for place in net.postset(transition):
                post |= 1 << place_index[place]
            pre_masks.append(pre)
            post_masks.append(post)
        self.pre_masks = pre_masks
        self.post_masks = post_masks
        self.deltas = [pre ^ post for pre, post in zip(pre_masks, post_masks)]
        self._not_pre = [~pre for pre in pre_masks]
        # Tokens may appear on an output place that is not consumed; if it is
        # already marked the successor would be 2-bounded.
        self._post_only = [post & ~pre for pre, post in zip(pre_masks, post_masks)]
        # Dirty-frontier index: for each transition t, the transitions whose
        # preset touches a place changed by firing t (the only ones whose
        # enabled status can differ between m and fire(t, m)).
        self._affected: list[list[int]] = []
        for delta in self.deltas:
            self._affected.append(
                [u for u, pre in enumerate(pre_masks) if pre & delta]
            )

    # ------------------------------------------------------------------ #
    # Marking conversion (API boundary)
    # ------------------------------------------------------------------ #

    def pack(self, marking: Marking) -> int:
        """Pack a safe marking into an int (bit i == place i marked).

        Raises
        ------
        UnsafeNetError
            If the marking holds more than one token on a place or marks a
            place the net does not know about.
        """
        bits = 0
        place_index = self.place_index
        for place, count in marking.items():
            if count > 1:
                raise UnsafeNetError(
                    f"place {place!r} holds {count} tokens; markings of "
                    "unsafe nets cannot be bit-packed"
                )
            index = place_index.get(place)
            if index is None:
                raise UnsafeNetError(f"marked place {place!r} is not part of the net")
            bits |= 1 << index
        return bits

    def unpack(self, bits: int) -> Marking:
        """Unpack an int marking back into a name-based :class:`Marking`."""
        names = self.place_names
        marked = []
        while bits:
            low = bits & -bits
            marked.append(names[low.bit_length() - 1])
            bits ^= low
        return Marking.from_marked(marked)

    # ------------------------------------------------------------------ #
    # Token-flow semantics on int markings
    # ------------------------------------------------------------------ #

    def is_enabled(self, transition: int, marking: int) -> bool:
        """True if every input place of transition index ``transition`` is marked."""
        pre = self.pre_masks[transition]
        return marking & pre == pre

    def fire(self, transition: int, marking: int) -> int:
        """Successor marking (assumes the transition is enabled and safe)."""
        return (marking & self._not_pre[transition]) | self.post_masks[transition]

    def enabled_mask(self, marking: int) -> int:
        """Bitmask over transition indices of the enabled transitions."""
        mask = 0
        bit = 1
        for pre in self.pre_masks:
            if marking & pre == pre:
                mask |= bit
            bit <<= 1
        return mask

    def enabled_transitions(self, marking: int) -> list[int]:
        """Enabled transition indices in index (= insertion) order."""
        return [
            t for t, pre in enumerate(self.pre_masks) if marking & pre == pre
        ]

    # ------------------------------------------------------------------ #
    # Reachability (BFS over int markings)
    # ------------------------------------------------------------------ #

    def explore(
        self,
        initial: int,
        max_markings: Optional[int] = None,
        want_edges: bool = False,
    ) -> tuple[list[int], list[int], Optional[list[tuple[int, int, int]]]]:
        """Breadth-first exploration from a packed initial marking.

        Returns ``(markings, enabled, edges)`` where ``markings`` holds the
        packed markings in discovery order (the same order as the reference
        BFS over :class:`Marking` objects), ``enabled`` the enabled-transition
        bitmask of each marking, and ``edges`` (if requested) the triples
        ``(source_index, transition_index, target_index)`` in firing order.

        Raises
        ------
        StateSpaceLimitExceeded
            When more than ``max_markings`` markings are reachable.
        UnsafeNetError
            When a firing would place a second token on a place.
        """
        pre_masks = self.pre_masks
        post_masks = self.post_masks
        not_pre = self._not_pre
        post_only = self._post_only
        affected = self._affected
        transition_names = self.transition_names

        order = [initial]
        index_of = {initial: 0}
        enabled = [self.enabled_mask(initial)]
        edges: Optional[list[tuple[int, int, int]]] = [] if want_edges else None
        head = 0
        while head < len(order):
            marking = order[head]
            source = head
            pending = enabled[head]
            head += 1
            while pending:
                low = pending & -pending
                pending ^= low
                transition = low.bit_length() - 1
                if marking & post_only[transition]:
                    raise UnsafeNetError(
                        f"firing {transition_names[transition]!r} produces a "
                        "second token; falling back to multiset semantics"
                    )
                successor = (marking & not_pre[transition]) | post_masks[transition]
                target = index_of.get(successor)
                if target is None:
                    if max_markings is not None and len(order) >= max_markings:
                        raise StateSpaceLimitExceeded(
                            f"more than {max_markings} reachable markings"
                        )
                    successor_enabled = enabled[source]
                    for u in affected[transition]:
                        pre_u = pre_masks[u]
                        if successor & pre_u == pre_u:
                            successor_enabled |= 1 << u
                        else:
                            successor_enabled &= ~(1 << u)
                    target = len(order)
                    index_of[successor] = target
                    order.append(successor)
                    enabled.append(successor_enabled)
                if edges is not None:
                    edges.append((source, transition, target))
        return order, enabled, edges


def compile_net(net: PetriNet) -> CompiledNet:
    """Compiled view of a net, cached on the net's structural version."""
    version = getattr(net, "_version", None)
    cached = getattr(net, "_compiled_cache", None)
    if cached is not None and cached[0] == version:
        return cached[1]
    compiled = CompiledNet(net)
    try:
        net._compiled_cache = (version, compiled)
    except AttributeError:
        pass  # net-like object without attribute support; skip caching
    return compiled


class CompiledBoundedNet:
    """Packed view of a k-bounded net: ``bits``-bit token fields per place.

    Generalizes :class:`CompiledNet` from safe (1-bounded) nets to
    ``(2**bits - 1)``-bounded nets.  A marking is a single int carved into
    fields of ``bits + 1`` bits per place — ``bits`` count bits plus one
    *guard* bit that stays zero in every valid marking.  The guard bit makes
    the token-flow semantics branch-free across all places at once (SWAR):

    ``is_enabled(t, m)``
        ``((m | G_t) - S_t) & G_t == G_t`` where ``G_t`` sets the guard bit
        of every input place of ``t`` and ``S_t`` subtracts one token from
        each.  Setting the guard before subtracting confines borrows to
        their own field: the guard survives iff the field held >= 1 token.
    ``fire(t, m)``
        ``m + delta_t`` where ``delta_t = sum(post) - sum(pre)`` over the
        fields.  A field overflowing ``capacity`` carries into its guard
        bit, so ``result & guard_all != 0`` detects a bound violation in one
        mask test (:class:`BoundExceededError` — callers widen the fields or
        fall back to the unbounded reference semantics).

    Exploration keeps the exact BFS discovery order of the reference
    multiset semantics, so graphs built on this kernel are
    indistinguishable from reference-built ones (the differential tests in
    ``tests/test_bounded_kernel.py`` pin this).
    """

    __slots__ = (
        "net",
        "bits",
        "capacity",
        "place_names",
        "place_index",
        "transition_names",
        "transition_index",
        "pre_guards",
        "pre_subs",
        "deltas",
        "guard_all",
        "field_mask",
        "_width",
        "_affected",
    )

    def __init__(self, net: PetriNet, bits: int = 2):
        if bits < 1:
            raise ValueError(f"need at least 1 count bit per place, got {bits}")
        self.net = net
        self.bits = bits
        self.capacity = (1 << bits) - 1
        width = bits + 1
        self._width = width
        self.field_mask = (1 << bits) - 1
        self.place_names: list[str] = net.places
        self.place_index: dict[str, int] = {
            name: i for i, name in enumerate(self.place_names)
        }
        self.transition_names: list[str] = net.transitions
        self.transition_index: dict[str, int] = {
            name: i for i, name in enumerate(self.transition_names)
        }
        place_index = self.place_index
        guard_all = 0
        for i in range(len(self.place_names)):
            guard_all |= 1 << (i * width + bits)
        self.guard_all = guard_all
        pre_guards: list[int] = []
        pre_subs: list[int] = []
        deltas: list[int] = []
        changed_guards: list[int] = []
        for transition in self.transition_names:
            pre = set(net.preset(transition))
            post = set(net.postset(transition))
            guard = 0
            sub = 0
            for place in pre:
                shift = place_index[place] * width
                guard |= 1 << (shift + bits)
                sub |= 1 << shift
            delta = 0
            changed = 0
            for place in post - pre:
                shift = place_index[place] * width
                delta += 1 << shift
                changed |= 1 << (shift + bits)
            for place in pre - post:
                shift = place_index[place] * width
                delta -= 1 << shift
                changed |= 1 << (shift + bits)
            pre_guards.append(guard)
            pre_subs.append(sub)
            deltas.append(delta)
            changed_guards.append(changed)
        self.pre_guards = pre_guards
        self.pre_subs = pre_subs
        self.deltas = deltas
        # Dirty-frontier index: transitions whose preset touches a place
        # whose token count changes when t fires (self-loop places keep
        # their count, so they never flip anyone's enabled status).
        self._affected: list[list[int]] = [
            [u for u, guard in enumerate(pre_guards) if guard & changed]
            for changed in changed_guards
        ]

    # ------------------------------------------------------------------ #
    # Marking conversion (API boundary)
    # ------------------------------------------------------------------ #

    def pack(self, marking: Marking) -> int:
        """Pack a k-bounded marking into an int (``bits``-bit count fields).

        Raises
        ------
        BoundExceededError
            If a place holds more than ``capacity`` tokens.
        UnsafeNetError
            If the marking marks a place the net does not know about.
        """
        packed = 0
        width = self._width
        capacity = self.capacity
        place_index = self.place_index
        for place, count in marking.items():
            index = place_index.get(place)
            if index is None:
                raise UnsafeNetError(f"marked place {place!r} is not part of the net")
            if count > capacity:
                raise BoundExceededError(
                    f"place {place!r} holds {count} tokens; {self.bits}-bit "
                    f"fields cap at {capacity}"
                )
            packed |= count << (index * width)
        return packed

    def unpack(self, packed: int) -> Marking:
        """Unpack an int marking back into a name-based :class:`Marking`."""
        names = self.place_names
        width = self._width
        field_mask = self.field_mask
        tokens: dict[str, int] = {}
        while packed:
            low = packed & -packed
            index = (low.bit_length() - 1) // width
            shift = index * width
            tokens[names[index]] = (packed >> shift) & field_mask
            packed &= ~(field_mask << shift)
        return Marking(tokens)

    # ------------------------------------------------------------------ #
    # Token-flow semantics on int markings
    # ------------------------------------------------------------------ #

    def is_enabled(self, transition: int, marking: int) -> bool:
        """True if every input place of ``transition`` holds >= 1 token."""
        guard = self.pre_guards[transition]
        return ((marking | guard) - self.pre_subs[transition]) & guard == guard

    def fire(self, transition: int, marking: int) -> int:
        """Successor marking (assumes enabled; caller checks the bound)."""
        return marking + self.deltas[transition]

    def fire_checked(self, transition: int, marking: int) -> int:
        """Successor marking, raising :class:`BoundExceededError` on overflow."""
        successor = marking + self.deltas[transition]
        if successor & self.guard_all:
            raise BoundExceededError(
                f"firing {self.transition_names[transition]!r} exceeds "
                f"{self.capacity} tokens on a place"
            )
        return successor

    def enabled_mask(self, marking: int) -> int:
        """Bitmask over transition indices of the enabled transitions."""
        mask = 0
        bit = 1
        for guard, sub in zip(self.pre_guards, self.pre_subs):
            if ((marking | guard) - sub) & guard == guard:
                mask |= bit
            bit <<= 1
        return mask

    def enabled_transitions(self, marking: int) -> list[int]:
        """Enabled transition indices in index (= insertion) order."""
        return [
            t
            for t, (guard, sub) in enumerate(zip(self.pre_guards, self.pre_subs))
            if ((marking | guard) - sub) & guard == guard
        ]

    # ------------------------------------------------------------------ #
    # Reachability (BFS over int markings)
    # ------------------------------------------------------------------ #

    def explore(
        self,
        initial: int,
        max_markings: Optional[int] = None,
        want_edges: bool = False,
    ) -> tuple[list[int], list[int], Optional[list[tuple[int, int, int]]]]:
        """Breadth-first exploration from a packed initial marking.

        Same contract and discovery order as :meth:`CompiledNet.explore`.

        Raises
        ------
        StateSpaceLimitExceeded
            When more than ``max_markings`` markings are reachable.
        BoundExceededError
            When a firing pushes a place past ``capacity`` tokens.
        """
        pre_guards = self.pre_guards
        pre_subs = self.pre_subs
        deltas = self.deltas
        guard_all = self.guard_all
        affected = self._affected
        transition_names = self.transition_names

        order = [initial]
        index_of = {initial: 0}
        enabled = [self.enabled_mask(initial)]
        edges: Optional[list[tuple[int, int, int]]] = [] if want_edges else None
        head = 0
        while head < len(order):
            marking = order[head]
            source = head
            pending = enabled[head]
            head += 1
            while pending:
                low = pending & -pending
                pending ^= low
                transition = low.bit_length() - 1
                successor = marking + deltas[transition]
                if successor & guard_all:
                    raise BoundExceededError(
                        f"firing {transition_names[transition]!r} exceeds "
                        f"{self.capacity} tokens on a place"
                    )
                target = index_of.get(successor)
                if target is None:
                    if max_markings is not None and len(order) >= max_markings:
                        raise StateSpaceLimitExceeded(
                            f"more than {max_markings} reachable markings"
                        )
                    successor_enabled = enabled[source]
                    for u in affected[transition]:
                        guard_u = pre_guards[u]
                        if ((successor | guard_u) - pre_subs[u]) & guard_u == guard_u:
                            successor_enabled |= 1 << u
                        else:
                            successor_enabled &= ~(1 << u)
                    target = len(order)
                    index_of[successor] = target
                    order.append(successor)
                    enabled.append(successor_enabled)
                if edges is not None:
                    edges.append((source, transition, target))
        return order, enabled, edges


#: Field widths tried, in order, before falling back to the reference
#: semantics: 3-bounded, 15-bounded, 255-bounded.
BOUNDED_BITS_LADDER = (2, 4, 8)


def compile_bounded_net(net: PetriNet, bits: int = 2) -> CompiledBoundedNet:
    """Bounded compiled view of a net, cached per (version, bits)."""
    version = getattr(net, "_version", None)
    cached = getattr(net, "_bounded_compiled_cache", None)
    if cached is not None and cached[0] == version and bits in cached[1]:
        return cached[1][bits]
    compiled = CompiledBoundedNet(net, bits)
    try:
        if cached is None or cached[0] != version:
            net._bounded_compiled_cache = (version, {bits: compiled})
        else:
            cached[1][bits] = compiled
    except AttributeError:
        pass  # net-like object without attribute support; skip caching
    return compiled
