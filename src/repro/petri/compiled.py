"""Bit-packed compiled kernel for safe Petri nets.

This module is the machine-level core that every hot reachability path runs
on.  A :class:`CompiledNet` freezes the structure of a
:class:`~repro.petri.net.PetriNet` — the ``(P, T, F)`` part of the paper's
``(P, T, F, m0)`` four-tuple (Section II-B) — into integer masks over an
interned place order:

``pre_masks[t]``
    Bit ``i`` is set iff place ``i`` is an input place of transition ``t``
    (the preset ``•t`` restricted to places).
``post_masks[t]``
    Bit ``i`` is set iff place ``i`` is an output place of ``t`` (``t•``).
``deltas[t]``
    ``pre_masks[t] ^ post_masks[t]`` — the places whose token count changes
    when ``t`` fires (self-loop places, ``•t ∩ t•``, keep their token).

A marking ``m`` of a *safe* net is then a plain ``int`` with bit ``i`` set
iff place ``i`` is marked, and the token-flow semantics collapses to:

``is_enabled(t, m)``  ==  ``m & pre_masks[t] == pre_masks[t]``
``fire(t, m)``        ==  ``(m & ~pre_masks[t]) | post_masks[t]``

(the reference semantics of ``PetriNet.is_enabled`` / ``PetriNet.fire`` for
1-bounded markings).  Firing a transition whose output place is already
marked would create a second token; the kernel detects this and raises
:class:`UnsafeNetError`, at which point callers fall back to the dict-based
reference path, so unsafe nets keep the exact multiset semantics.

Reachability exploration additionally maintains the enabled set of each
marking incrementally ("dirty-frontier"): when ``t`` fires, only transitions
adjacent to the changed places (``consumer_masks`` over ``deltas[t]``) can
change their enabled status, so the per-successor work is proportional to
the local fan-out instead of ``|T|``.
"""

from __future__ import annotations

from typing import Optional

from repro.petri.marking import Marking
from repro.petri.net import PetriNet


class UnsafeNetError(RuntimeError):
    """Raised when a marking cannot be represented as one bit per place.

    Either the starting marking carries multiple tokens on a place (or tokens
    on places unknown to the net), or exploration fired a transition into an
    already-marked output place.  Callers catch this and fall back to the
    dict-based reference semantics.
    """


class StateSpaceLimitExceeded(RuntimeError):
    """Raised when reachability exploration exceeds the marking limit."""


class CompiledNet:
    """Bit-packed read-only view of a Petri net.

    The compiled form is cached on the net keyed by its structural version,
    so repeated analyses of the same net compile once (see
    :func:`compile_net`).
    """

    __slots__ = (
        "net",
        "place_names",
        "place_index",
        "transition_names",
        "transition_index",
        "pre_masks",
        "post_masks",
        "deltas",
        "_not_pre",
        "_post_only",
        "_affected",
    )

    def __init__(self, net: PetriNet):
        self.net = net
        self.place_names: list[str] = net.places
        self.place_index: dict[str, int] = {
            name: i for i, name in enumerate(self.place_names)
        }
        self.transition_names: list[str] = net.transitions
        self.transition_index: dict[str, int] = {
            name: i for i, name in enumerate(self.transition_names)
        }
        place_index = self.place_index
        pre_masks: list[int] = []
        post_masks: list[int] = []
        for transition in self.transition_names:
            pre = 0
            for place in net.preset(transition):
                pre |= 1 << place_index[place]
            post = 0
            for place in net.postset(transition):
                post |= 1 << place_index[place]
            pre_masks.append(pre)
            post_masks.append(post)
        self.pre_masks = pre_masks
        self.post_masks = post_masks
        self.deltas = [pre ^ post for pre, post in zip(pre_masks, post_masks)]
        self._not_pre = [~pre for pre in pre_masks]
        # Tokens may appear on an output place that is not consumed; if it is
        # already marked the successor would be 2-bounded.
        self._post_only = [post & ~pre for pre, post in zip(pre_masks, post_masks)]
        # Dirty-frontier index: for each transition t, the transitions whose
        # preset touches a place changed by firing t (the only ones whose
        # enabled status can differ between m and fire(t, m)).
        self._affected: list[list[int]] = []
        for delta in self.deltas:
            self._affected.append(
                [u for u, pre in enumerate(pre_masks) if pre & delta]
            )

    # ------------------------------------------------------------------ #
    # Marking conversion (API boundary)
    # ------------------------------------------------------------------ #

    def pack(self, marking: Marking) -> int:
        """Pack a safe marking into an int (bit i == place i marked).

        Raises
        ------
        UnsafeNetError
            If the marking holds more than one token on a place or marks a
            place the net does not know about.
        """
        bits = 0
        place_index = self.place_index
        for place, count in marking.items():
            if count > 1:
                raise UnsafeNetError(
                    f"place {place!r} holds {count} tokens; markings of "
                    "unsafe nets cannot be bit-packed"
                )
            index = place_index.get(place)
            if index is None:
                raise UnsafeNetError(f"marked place {place!r} is not part of the net")
            bits |= 1 << index
        return bits

    def unpack(self, bits: int) -> Marking:
        """Unpack an int marking back into a name-based :class:`Marking`."""
        names = self.place_names
        marked = []
        while bits:
            low = bits & -bits
            marked.append(names[low.bit_length() - 1])
            bits ^= low
        return Marking.from_marked(marked)

    # ------------------------------------------------------------------ #
    # Token-flow semantics on int markings
    # ------------------------------------------------------------------ #

    def is_enabled(self, transition: int, marking: int) -> bool:
        """True if every input place of transition index ``transition`` is marked."""
        pre = self.pre_masks[transition]
        return marking & pre == pre

    def fire(self, transition: int, marking: int) -> int:
        """Successor marking (assumes the transition is enabled and safe)."""
        return (marking & self._not_pre[transition]) | self.post_masks[transition]

    def enabled_mask(self, marking: int) -> int:
        """Bitmask over transition indices of the enabled transitions."""
        mask = 0
        bit = 1
        for pre in self.pre_masks:
            if marking & pre == pre:
                mask |= bit
            bit <<= 1
        return mask

    def enabled_transitions(self, marking: int) -> list[int]:
        """Enabled transition indices in index (= insertion) order."""
        return [
            t for t, pre in enumerate(self.pre_masks) if marking & pre == pre
        ]

    # ------------------------------------------------------------------ #
    # Reachability (BFS over int markings)
    # ------------------------------------------------------------------ #

    def explore(
        self,
        initial: int,
        max_markings: Optional[int] = None,
        want_edges: bool = False,
    ) -> tuple[list[int], list[int], Optional[list[tuple[int, int, int]]]]:
        """Breadth-first exploration from a packed initial marking.

        Returns ``(markings, enabled, edges)`` where ``markings`` holds the
        packed markings in discovery order (the same order as the reference
        BFS over :class:`Marking` objects), ``enabled`` the enabled-transition
        bitmask of each marking, and ``edges`` (if requested) the triples
        ``(source_index, transition_index, target_index)`` in firing order.

        Raises
        ------
        StateSpaceLimitExceeded
            When more than ``max_markings`` markings are reachable.
        UnsafeNetError
            When a firing would place a second token on a place.
        """
        pre_masks = self.pre_masks
        post_masks = self.post_masks
        not_pre = self._not_pre
        post_only = self._post_only
        affected = self._affected
        transition_names = self.transition_names

        order = [initial]
        index_of = {initial: 0}
        enabled = [self.enabled_mask(initial)]
        edges: Optional[list[tuple[int, int, int]]] = [] if want_edges else None
        head = 0
        while head < len(order):
            marking = order[head]
            source = head
            pending = enabled[head]
            head += 1
            while pending:
                low = pending & -pending
                pending ^= low
                transition = low.bit_length() - 1
                if marking & post_only[transition]:
                    raise UnsafeNetError(
                        f"firing {transition_names[transition]!r} produces a "
                        "second token; falling back to multiset semantics"
                    )
                successor = (marking & not_pre[transition]) | post_masks[transition]
                target = index_of.get(successor)
                if target is None:
                    if max_markings is not None and len(order) >= max_markings:
                        raise StateSpaceLimitExceeded(
                            f"more than {max_markings} reachable markings"
                        )
                    successor_enabled = enabled[source]
                    for u in affected[transition]:
                        pre_u = pre_masks[u]
                        if successor & pre_u == pre_u:
                            successor_enabled |= 1 << u
                        else:
                            successor_enabled &= ~(1 << u)
                    target = len(order)
                    index_of[successor] = target
                    order.append(successor)
                    enabled.append(successor_enabled)
                if edges is not None:
                    edges.append((source, transition, target))
        return order, enabled, edges


def compile_net(net: PetriNet) -> CompiledNet:
    """Compiled view of a net, cached on the net's structural version."""
    version = getattr(net, "_version", None)
    cached = getattr(net, "_compiled_cache", None)
    if cached is not None and cached[0] == version:
        return cached[1]
    compiled = CompiledNet(net)
    try:
        net._compiled_cache = (version, compiled)
    except AttributeError:
        pass  # net-like object without attribute support; skip caching
    return compiled
