"""repro — Structural methods for the synthesis of speed-independent circuits.

A reproduction of Pastor, Cortadella, Kondratyev and Roig (DATE'96 /
IEEE TCAD 17(11), 1998): synthesis of speed-independent asynchronous circuits
from free-choice signal transition graphs using structural (reachability-
graph-free) approximations of the signal regions.

Unified entry point
-------------------
:mod:`repro.api` is the public front door — re-exported here for
convenience::

    import repro

    report = repro.run("sequencer", level=5, verify=True)
    diff = repro.compare("muller_pipeline_4")      # both backends, cross-check
    reports = repro.synthesize_many(["fig1", "sequencer"], jobs=4)

* :class:`repro.Spec` — one constructor for ``.g`` files, benchmark names,
  and in-memory STGs, with a stable content hash;
* :class:`repro.Pipeline` — staged ``analyze → refine → synthesize → map →
  verify`` flow with per-stage memoisation;
* backends — ``structural`` (the paper's contribution), ``statebased``
  (the exhaustive baseline), and the differential :func:`repro.compare`;
* ``python -m repro`` — the same flows as a CLI
  (``synthesize`` / ``verify`` / ``compare`` / ``bench`` / ``list``).

Public sub-packages
-------------------
``repro.api``         unified pipeline, backends, batch execution, CLI
``repro.boolean``     cube/cover algebra and two-level minimization
``repro.petri``       Petri-net kernel (markings, reachability, SM-covers)
``repro.stg``         signal transition graphs and the ``.g`` format
``repro.statebased``  exhaustive (state-based) analysis and synthesis baseline
``repro.structural``  structural approximations (the paper's contribution)
``repro.synthesis``   speed-independent synthesis flow and architectures
``repro.verify``      speed-independence verification of the synthesized nets
``repro.benchmarks``  benchmark STGs and scalable generators
``repro.experiments`` table/figure reproduction harness
"""

from repro.api import (
    ComparisonReport,
    Pipeline,
    Report,
    Spec,
    SpecError,
    SynthesisError,
    SynthesisOptions,
    compare,
    run,
    synthesize_many,
)

__version__ = "2.0.0"

__all__ = [
    "ComparisonReport",
    "Pipeline",
    "Report",
    "Spec",
    "SpecError",
    "SynthesisError",
    "SynthesisOptions",
    "compare",
    "run",
    "synthesize_many",
    "__version__",
]
