"""repro — Structural methods for the synthesis of speed-independent circuits.

A reproduction of Pastor, Cortadella, Kondratyev and Roig (DATE'96 /
IEEE TCAD 17(11), 1998): synthesis of speed-independent asynchronous circuits
from free-choice signal transition graphs using structural (reachability-
graph-free) approximations of the signal regions.

Public sub-packages
-------------------
``repro.boolean``     cube/cover algebra and two-level minimization
``repro.petri``       Petri-net kernel (markings, reachability, SM-covers)
``repro.stg``         signal transition graphs and the ``.g`` format
``repro.statebased``  exhaustive (state-based) analysis and synthesis baseline
``repro.structural``  structural approximations (the paper's contribution)
``repro.synthesis``   speed-independent synthesis flow and architectures
``repro.verify``      speed-independence verification of the synthesized nets
``repro.benchmarks``  benchmark STGs and scalable generators
``repro.experiments`` table/figure reproduction harness
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
