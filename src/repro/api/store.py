"""Content-addressed on-disk artifact store.

The pipeline's in-memory cache dies with the process; this module gives it a
durable backing.  Every stage artifact is serialized through its versioned
``to_json`` form and written under a *content address*: the SHA-256 of the
canonical JSON encoding of ``(code version, stage, spec hash, stage key)``.
Two pipelines — in different processes, on different days, behind a CLI, a
batch worker or the HTTP daemon — that ask for the same stage of the same
spec under the same options therefore share one on-disk entry.

Layout::

    <root>/v1/<digest[:2]>/<digest>.json

Each entry is an *envelope* recording the code version, the stage, the spec
name/hash and the artifact document.  Reads validate the envelope: an entry
written by a different code version (or a truncated/corrupted file) is
treated as a miss, never as an error — a stale store degrades to
recomputation, it cannot poison results.

Writes are atomic (temp file + ``os.replace``) so concurrent writers —
process-pool batch workers, server threads — can share a store without
locking; both sides of a race write byte-identical content.

The default location is ``~/.cache/repro`` (or ``$REPRO_STORE``); every API
entry point accepts an explicit path instead.
"""

from __future__ import annotations

import fnmatch
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

#: Version of the artifact-producing code.  Entries written under a
#: different code version are ignored on read (treated as misses), so a
#: store can safely outlive the code that filled it.  Bump whenever the
#: semantics of any stage computation or artifact schema changes.
CODE_VERSION = "repro-5.0"

#: Version of the on-disk layout (the ``v<N>`` directory level).
LAYOUT_VERSION = 1

#: Environment variable overriding the default store location.
STORE_ENV_VAR = "REPRO_STORE"


def default_store_path() -> Path:
    """The default store root: ``$REPRO_STORE`` or ``~/.cache/repro``."""
    env = os.environ.get(STORE_ENV_VAR)
    if env:
        return Path(env).expanduser()
    cache_home = os.environ.get("XDG_CACHE_HOME")
    base = Path(cache_home).expanduser() if cache_home else Path.home() / ".cache"
    return base / "repro"


def _canonical(key: object) -> str:
    """Canonical JSON encoding of a cache key (tuples become lists)."""
    return json.dumps(key, sort_keys=True, separators=(",", ":"), default=_encode)


def _encode(value: object):
    """JSON fallback for the non-JSON atoms appearing in stage keys."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    raise TypeError(f"unhashable store-key component: {value!r}")


class ArtifactStore:
    """A content-addressed JSON store for pipeline stage artifacts.

    Parameters
    ----------
    root:
        Directory holding the store (created lazily on first write).
        ``None`` selects :func:`default_store_path`.
    code_version:
        Overrides the code-version stamp (tests use this to pin the
        stale-store behaviour; production code never passes it).
    """

    def __init__(
        self,
        root: Union[str, os.PathLike, None] = None,
        code_version: str = CODE_VERSION,
    ):
        self.root = Path(root).expanduser() if root is not None else default_store_path()
        self.code_version = code_version
        #: read/write counters of THIS handle (per-process introspection)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # ------------------------------------------------------------------ #
    # Addressing
    # ------------------------------------------------------------------ #

    def digest_of(self, key: object) -> str:
        """Content address of a stage key (code version included)."""
        text = _canonical([self.code_version, key])
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def path_of(self, digest: str) -> Path:
        return self.root / f"v{LAYOUT_VERSION}" / digest[:2] / f"{digest}.json"

    # ------------------------------------------------------------------ #
    # Read / write
    # ------------------------------------------------------------------ #

    def get(self, key: object) -> Optional[dict]:
        """The artifact document stored under ``key``, or ``None``.

        Corrupted files and entries written by a different code version are
        misses, not errors.
        """
        path = self.path_of(self.digest_of(key))
        try:
            with open(path, "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("code_version") != self.code_version
            or "artifact" not in envelope
        ):
            self.misses += 1
            return None
        self.hits += 1
        return envelope["artifact"]

    def put(
        self,
        key: object,
        artifact: dict,
        stage: str = "",
        spec_name: str = "",
        spec_hash: str = "",
    ) -> Path:
        """Atomically persist an artifact document under ``key``."""
        digest = self.digest_of(key)
        path = self.path_of(digest)
        envelope = {
            "code_version": self.code_version,
            "stage": stage,
            "spec": spec_name,
            "spec_hash": spec_hash,
            "artifact": artifact,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(envelope, separators=(",", ":"))
        fd, temp_name = tempfile.mkstemp(
            prefix=f".{digest[:12]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self.writes += 1
        return path

    # ------------------------------------------------------------------ #
    # Maintenance / introspection
    # ------------------------------------------------------------------ #

    def _entry_paths(self):
        layout = self.root / f"v{LAYOUT_VERSION}"
        if not layout.is_dir():
            return
        for bucket in sorted(layout.iterdir()):
            if not bucket.is_dir():
                continue
            for path in sorted(bucket.glob("*.json")):
                yield path

    def entries(self) -> list[dict]:
        """The envelopes of every readable entry (maintenance view)."""
        result = []
        for path in self._entry_paths():
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    envelope = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            if isinstance(envelope, dict):
                envelope["_path"] = str(path)
                result.append(envelope)
        return result

    def stats(self) -> dict:
        """Entry/byte totals on disk plus this handle's hit/miss counters."""
        files = 0
        size = 0
        stale = 0
        stages: dict[str, int] = {}
        for path in self._entry_paths():
            try:
                file_size = path.stat().st_size
                with open(path, "r", encoding="utf-8") as handle:
                    envelope = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            files += 1
            size += file_size
            if envelope.get("code_version") != self.code_version:
                stale += 1
                continue
            stage = envelope.get("stage") or "unknown"
            stages[stage] = stages.get(stage, 0) + 1
        return {
            "root": str(self.root),
            "code_version": self.code_version,
            "entries": files,
            "stale_entries": stale,
            "bytes": size,
            "per_stage": dict(sorted(stages.items())),
            "session": {
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
            },
        }

    def clear(self, spec_pattern: Optional[str] = None) -> int:
        """Remove entries; returns the number of files deleted.

        ``spec_pattern`` scopes the removal to entries whose recorded spec
        name matches the glob (entries without a readable envelope only go
        on a full clear).  A full clear also sweeps up ``.tmp`` litter left
        behind by writers that were killed between ``mkstemp`` and
        ``os.replace``.
        """
        removed = 0
        for path in list(self._entry_paths()):
            if spec_pattern is not None:
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        envelope = json.load(handle)
                    spec_name = envelope.get("spec", "")
                except (OSError, json.JSONDecodeError):
                    continue
                if not fnmatch.fnmatch(spec_name, spec_pattern):
                    continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        if spec_pattern is None:
            layout = self.root / f"v{LAYOUT_VERSION}"
            if layout.is_dir():
                for bucket in layout.iterdir():
                    if not bucket.is_dir():
                        continue
                    for path in bucket.iterdir():
                        if path.suffix == ".tmp":
                            try:
                                path.unlink()
                                removed += 1
                            except OSError:
                                pass
        return removed

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self.root)!r}, code_version={self.code_version!r})"


def get_store(
    store: Union["ArtifactStore", str, os.PathLike, None],
    default: bool = False,
) -> Optional[ArtifactStore]:
    """Resolve a store argument: instance, path, or (optionally) the default.

    ``None`` resolves to the default store when ``default=True`` (the CLI and
    the server are durable by default) and to "no store" otherwise (library
    callers opt in explicitly — constructing a plain :class:`Pipeline` never
    touches the filesystem).
    """
    if isinstance(store, ArtifactStore):
        return store
    if store is not None:
        return ArtifactStore(store)
    if default:
        return ArtifactStore()
    return None
