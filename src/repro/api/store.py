"""Content-addressed on-disk artifact store.

The pipeline's in-memory cache dies with the process; this module gives it a
durable backing.  Every stage artifact is serialized through its versioned
``to_json`` form and written under a *content address*: the SHA-256 of the
canonical JSON encoding of ``(code version, stage, spec hash, stage key)``.
Two pipelines — in different processes, on different days, behind a CLI, a
batch worker or the HTTP daemon — that ask for the same stage of the same
spec under the same options therefore share one on-disk entry.

Layout::

    <root>/v1/<digest[:2]>/<digest>.json

Each entry is an *envelope* recording the code version, the stage, the spec
name/hash and the artifact document.  Reads validate the envelope: an entry
written by a different code version (or a truncated/corrupted file) is
treated as a miss, never as an error — a stale store degrades to
recomputation, it cannot poison results.

Writes are atomic (temp file + ``os.replace``) so concurrent writers —
process-pool batch workers, server threads — can share a store without
locking; both sides of a race write byte-identical content.

Crash safety (PR 6): a corrupt entry found on read is *quarantined* — moved
to ``v1/quarantine/`` next to a ``*.reason.json`` record — instead of being
silently re-read and re-failed forever; ``stats()`` sweeps orphaned
``*.tmp`` files a killed writer left between ``mkstemp`` and ``os.replace``;
``sweep()`` additionally quarantines stale-code-version entries; and
``fsync=True`` (or ``$REPRO_STORE_FSYNC``) adds a flush-to-platter
durability mode for stores that must survive power loss, not just process
death.  Deterministic fault injection (:mod:`repro.api.faults`) hooks the
read, write and corruption paths so all of this is testable on demand.

Hot tier (PR 9): ``lru_size=N`` adds a bounded in-memory LRU of artifact
documents *above* the disk tier, so a serving worker's hottest digests skip
the open/parse cost entirely; ``peek()`` is the uncounted, fault-free read
the fleet's single-flight followers poll, and ``flight_dir`` holds the
cross-process coalescing locks (stale ones are removed by ``sweep()``).

The default location is ``~/.cache/repro`` (or ``$REPRO_STORE``); every API
entry point accepts an explicit path instead.
"""

from __future__ import annotations

import fnmatch
import hashlib
import json
import os
import tempfile
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Union

#: Version of the artifact-producing code.  Entries written under a
#: different code version are ignored on read (treated as misses), so a
#: store can safely outlive the code that filled it.  Bump whenever the
#: semantics of any stage computation or artifact schema changes.
CODE_VERSION = "repro-5.0"

#: Version of the on-disk layout (the ``v<N>`` directory level).
LAYOUT_VERSION = 1

#: Environment variable overriding the default store location.
STORE_ENV_VAR = "REPRO_STORE"

#: Environment variable switching on fsync durability for every store handle.
FSYNC_ENV_VAR = "REPRO_STORE_FSYNC"

#: Orphaned ``*.tmp`` files older than this many seconds are swept by
#: ``stats()``; younger ones may belong to a live concurrent writer.
TMP_SWEEP_AGE = 3600.0


def default_store_path() -> Path:
    """The default store root: ``$REPRO_STORE`` or ``~/.cache/repro``."""
    env = os.environ.get(STORE_ENV_VAR)
    if env:
        return Path(env).expanduser()
    cache_home = os.environ.get("XDG_CACHE_HOME")
    base = Path(cache_home).expanduser() if cache_home else Path.home() / ".cache"
    return base / "repro"


def _canonical(key: object) -> str:
    """Canonical JSON encoding of a cache key (tuples become lists)."""
    return json.dumps(key, sort_keys=True, separators=(",", ":"), default=_encode)


def _encode(value: object):
    """JSON fallback for the non-JSON atoms appearing in stage keys."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    raise TypeError(f"unhashable store-key component: {value!r}")


class ArtifactStore:
    """A content-addressed JSON store for pipeline stage artifacts.

    Parameters
    ----------
    root:
        Directory holding the store (created lazily on first write).
        ``None`` selects :func:`default_store_path`.
    code_version:
        Overrides the code-version stamp (tests use this to pin the
        stale-store behaviour; production code never passes it).
    fsync:
        Durability mode: flush entry bytes (and the containing directory)
        to stable storage before the atomic rename, so a committed write
        survives power loss.  ``None`` consults ``$REPRO_STORE_FSYNC``.
    faults:
        Optional :class:`~repro.api.faults.FaultInjector` driving the
        ``store.read``/``store.write``/``store.corrupt`` injection points
        (``None`` — the default — costs one attribute check per call).
    obs:
        Optional :class:`~repro.obs.Obs` bundle; when set, reads, writes
        and quarantines additionally feed the fleet-aggregatable metrics
        registry (``repro_store_reads_total`` by outcome, ...).  Same
        zero-overhead-when-off discipline as ``faults``; the owning
        pipeline usually attaches this after construction.
    lru_size:
        Hot tier: keep up to this many artifact documents in a bounded
        in-memory LRU keyed on the content digest, so repeated reads of a
        hot digest skip the filesystem entirely.  ``0`` (the default)
        disables the tier — batch and test workloads keep the exact
        disk-level semantics, serving workers opt in.
    """

    def __init__(
        self,
        root: Union[str, os.PathLike, None] = None,
        code_version: str = CODE_VERSION,
        fsync: Optional[bool] = None,
        faults=None,
        lru_size: int = 0,
        obs=None,
    ):
        self.root = Path(root).expanduser() if root is not None else default_store_path()
        self.code_version = code_version
        if fsync is None:
            fsync = bool(os.environ.get(FSYNC_ENV_VAR))
        self.fsync = fsync
        self.faults = faults
        self.obs = obs
        #: age threshold for the orphaned-tempfile sweep in :meth:`stats`
        self.tmp_sweep_age = TMP_SWEEP_AGE
        #: read/write counters of THIS handle (per-process introspection)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        #: corrupt entries this handle moved to ``v1/quarantine/``
        self.quarantined = 0
        #: orphaned temp files this handle swept
        self.tmp_swept = 0
        #: hot-tier configuration and counters (PR 9)
        self.lru_size = max(0, int(lru_size))
        self.lru_hits = 0
        self._lru: "OrderedDict[str, dict]" = OrderedDict()
        self._lru_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Addressing
    # ------------------------------------------------------------------ #

    def digest_of(self, key: object) -> str:
        """Content address of a stage key (code version included)."""
        text = _canonical([self.code_version, key])
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def path_of(self, digest: str) -> Path:
        return self.root / f"v{LAYOUT_VERSION}" / digest[:2] / f"{digest}.json"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / f"v{LAYOUT_VERSION}" / "quarantine"

    @property
    def flight_dir(self) -> Path:
        """Cross-process single-flight locks (one file per in-flight digest)."""
        return self.root / f"v{LAYOUT_VERSION}" / "flight"

    # ------------------------------------------------------------------ #
    # Hot tier
    # ------------------------------------------------------------------ #

    def _lru_get(self, digest: str) -> Optional[dict]:
        if not self.lru_size:
            return None
        with self._lru_lock:
            artifact = self._lru.get(digest)
            if artifact is not None:
                self._lru.move_to_end(digest)
                self.lru_hits += 1
            return artifact

    def _lru_insert(self, digest: str, artifact: dict) -> None:
        if not self.lru_size:
            return
        with self._lru_lock:
            self._lru[digest] = artifact
            self._lru.move_to_end(digest)
            while len(self._lru) > self.lru_size:
                self._lru.popitem(last=False)

    # ------------------------------------------------------------------ #
    # Read / write
    # ------------------------------------------------------------------ #

    def get(self, key: object) -> Optional[dict]:
        """The artifact document stored under ``key``, or ``None``.

        Corrupted files are *quarantined* (moved to ``v1/quarantine/`` with
        a reason record) and read as misses — never as errors, and never
        re-read and re-failed forever.  Injected or real read IO errors are
        plain misses (the file, if any, is left alone).
        """
        digest = self.digest_of(key)
        hot = self._lru_get(digest)
        if hot is not None:
            self.hits += 1
            if self.obs is not None:
                self.obs.store_reads.inc(outcome="lru_hit")
            return hot
        path = self.path_of(digest)
        try:
            if self.faults is not None:
                self.faults.raise_io("store.read")
            with open(path, "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
        except json.JSONDecodeError:
            self.quarantine(path, "undecodable JSON")
            self.misses += 1
            if self.obs is not None:
                self.obs.store_reads.inc(outcome="miss")
            return None
        except OSError:
            self.misses += 1
            if self.obs is not None:
                self.obs.store_reads.inc(outcome="miss")
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("code_version") != self.code_version
            or "artifact" not in envelope
        ):
            # the digest embeds the code version, so a mismatched envelope
            # at this path is damage or tampering, not a stale entry
            self.quarantine(path, "invalid envelope")
            self.misses += 1
            if self.obs is not None:
                self.obs.store_reads.inc(outcome="miss")
            return None
        self.hits += 1
        if self.obs is not None:
            self.obs.store_reads.inc(outcome="hit")
        self._lru_insert(digest, envelope["artifact"])
        return envelope["artifact"]

    def peek(self, key: object) -> Optional[dict]:
        """An *uncounted*, fault-free read of ``key`` (or ``None``).

        The single-flight follower poll loop uses this: polling must not
        inflate the hit/miss counters, fire injected ``store.read`` faults,
        or quarantine anything — a follower only wants to know whether the
        leader's write has landed yet.
        """
        digest = self.digest_of(key)
        hot = self._lru_get(digest)
        if hot is not None:
            return hot
        try:
            with open(self.path_of(digest), "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("code_version") != self.code_version
            or "artifact" not in envelope
        ):
            return None
        return envelope["artifact"]

    def quarantine(self, path: Path, reason: str) -> bool:
        """Move a damaged entry aside with a ``*.reason.json`` record.

        Returns True when the file was moved.  Failures (already gone, an
        unwritable quarantine directory) are swallowed: quarantine is an
        improvement over the entry rotting in place, never a new error.
        """
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            target = self.quarantine_dir / path.name
            os.replace(path, target)
        except OSError:
            return False
        self.quarantined += 1
        if self.obs is not None:
            self.obs.store_quarantined.inc()
        record = {
            "reason": reason,
            "source": str(path),
            "detected_at": time.time(),
            "code_version": self.code_version,
        }
        try:
            reason_path = self.quarantine_dir / (path.stem + ".reason.json")
            reason_path.write_text(json.dumps(record, indent=2), encoding="utf-8")
        except OSError:
            pass
        return True

    def put(
        self,
        key: object,
        artifact: dict,
        stage: str = "",
        spec_name: str = "",
        spec_hash: str = "",
    ) -> Path:
        """Atomically persist an artifact document under ``key``.

        With ``fsync`` enabled the entry bytes and the containing directory
        are flushed to stable storage around the rename, upgrading the
        atomicity guarantee from crash-safe to power-loss-safe.
        """
        digest = self.digest_of(key)
        path = self.path_of(digest)
        envelope = {
            "code_version": self.code_version,
            "stage": stage,
            "spec": spec_name,
            "spec_hash": spec_hash,
            "artifact": artifact,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(envelope, separators=(",", ":"))
        if self.faults is not None:
            self.faults.raise_io("store.write", stage or None)
            if self.faults.corrupts_write(stage or None):
                # land a genuinely truncated entry on disk: the read side's
                # quarantine path is what the injection is meant to exercise
                text = text[: max(1, len(text) // 2)]
        fd, temp_name = tempfile.mkstemp(
            prefix=f".{digest[:12]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
                if self.fsync:
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(temp_name, path)
            if self.fsync:
                self._fsync_dir(path.parent)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self.writes += 1
        if self.obs is not None:
            self.obs.store_writes.inc()
        if text.endswith("}"):
            # a fault-corrupted (truncated) write must not land in the hot
            # tier: the read path's quarantine logic is what it exercises
            self._lru_insert(digest, artifact)
        return path

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        """Flush a directory entry (rename durability); best effort."""
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    # ------------------------------------------------------------------ #
    # Maintenance / introspection
    # ------------------------------------------------------------------ #

    def _entry_paths(self):
        layout = self.root / f"v{LAYOUT_VERSION}"
        if not layout.is_dir():
            return
        for bucket in sorted(layout.iterdir()):
            # entry buckets are the two-hex-digit digest prefixes; the
            # quarantine directory lives beside them and is not an entry set
            if not bucket.is_dir() or len(bucket.name) != 2:
                continue
            for path in sorted(bucket.glob("*.json")):
                yield path

    def _tmp_paths(self):
        layout = self.root / f"v{LAYOUT_VERSION}"
        if not layout.is_dir():
            return
        for bucket in sorted(layout.iterdir()):
            if not bucket.is_dir() or len(bucket.name) != 2:
                continue
            for path in sorted(bucket.glob("*.tmp")):
                yield path

    def entries(self) -> list[dict]:
        """The envelopes of every readable entry (maintenance view)."""
        result = []
        for path in self._entry_paths():
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    envelope = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            if isinstance(envelope, dict):
                envelope["_path"] = str(path)
                result.append(envelope)
        return result

    def stats(self) -> dict:
        """Entry/byte totals on disk plus this handle's hit/miss counters.

        Also sweeps orphaned ``*.tmp`` files older than ``tmp_sweep_age``
        (a writer killed between ``mkstemp`` and ``os.replace`` leaves one
        behind; a younger file may belong to a live concurrent writer).
        """
        files = 0
        size = 0
        stale = 0
        stages: dict[str, int] = {}
        for path in self._entry_paths():
            try:
                file_size = path.stat().st_size
                with open(path, "r", encoding="utf-8") as handle:
                    envelope = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            files += 1
            size += file_size
            if envelope.get("code_version") != self.code_version:
                stale += 1
                continue
            stage = envelope.get("stage") or "unknown"
            stages[stage] = stages.get(stage, 0) + 1
        tmp_files = 0
        tmp_removed = self._sweep_tmp(self.tmp_sweep_age)
        for _ in self._tmp_paths():
            tmp_files += 1
        quarantined = 0
        if self.quarantine_dir.is_dir():
            quarantined = sum(
                1
                for path in self.quarantine_dir.glob("*.json")
                if not path.name.endswith(".reason.json")
            )
        flight_locks = 0
        if self.flight_dir.is_dir():
            flight_locks = sum(1 for _ in self.flight_dir.glob("*.flight"))
        return {
            "root": str(self.root),
            "code_version": self.code_version,
            "entries": files,
            "stale_entries": stale,
            "bytes": size,
            "per_stage": dict(sorted(stages.items())),
            "tmp_files": tmp_files,
            "tmp_swept": tmp_removed,
            "quarantined_entries": quarantined,
            "flight_locks": flight_locks,
            "session": {
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
                "quarantined": self.quarantined,
                "tmp_swept": self.tmp_swept,
                "lru_hits": self.lru_hits,
                "lru_entries": len(self._lru),
                "lru_size": self.lru_size,
            },
        }

    def _sweep_tmp(self, older_than: float) -> int:
        """Remove orphaned temp files older than ``older_than`` seconds."""
        removed = 0
        now = time.time()
        for path in list(self._tmp_paths()):
            try:
                if now - path.stat().st_mtime < older_than:
                    continue
                path.unlink()
            except OSError:
                continue
            removed += 1
        self.tmp_swept += removed
        return removed

    def sweep(self, tmp_older_than: float = 0.0) -> dict:
        """Full maintenance pass: orphaned temp files and stale entries.

        Removes every ``*.tmp`` orphan older than ``tmp_older_than``
        seconds (default: all of them — callers invoke ``sweep`` when no
        writer is live), removes single-flight locks of the same age (a
        worker killed mid-computation leaves its coalescing lock behind),
        and quarantines entries stamped by a different code version (they
        can never be read again: the digest embeds the stamp).  Returns the
        counts.
        """
        tmp_removed = self._sweep_tmp(tmp_older_than)
        flight_removed = 0
        if self.flight_dir.is_dir():
            now = time.time()
            for path in list(self.flight_dir.glob("*.flight")):
                try:
                    if now - path.stat().st_mtime < tmp_older_than:
                        continue
                    path.unlink()
                except OSError:
                    continue
                flight_removed += 1
        stale_quarantined = 0
        for path in list(self._entry_paths()):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    envelope = json.load(handle)
            except json.JSONDecodeError:
                if self.quarantine(path, "undecodable JSON"):
                    stale_quarantined += 1
                continue
            except OSError:
                continue
            if (
                not isinstance(envelope, dict)
                or envelope.get("code_version") != self.code_version
            ):
                if self.quarantine(path, "stale code version"):
                    stale_quarantined += 1
        return {
            "tmp_removed": tmp_removed,
            "stale_quarantined": stale_quarantined,
            "flight_removed": flight_removed,
        }

    def probe(self) -> bool:
        """Readiness check: the layout directory exists (or can) and is
        writable.  Never raises — the serve daemon's ``/ready`` leans on it.
        """
        layout = self.root / f"v{LAYOUT_VERSION}"
        try:
            layout.mkdir(parents=True, exist_ok=True)
        except OSError:
            return False
        return os.access(layout, os.W_OK | os.X_OK)

    def clear(self, spec_pattern: Optional[str] = None) -> int:
        """Remove entries; returns the number of files deleted.

        ``spec_pattern`` scopes the removal to entries whose recorded spec
        name matches the glob (entries without a readable envelope only go
        on a full clear).  A full clear also sweeps up ``.tmp`` litter left
        behind by writers that were killed between ``mkstemp`` and
        ``os.replace``.
        """
        removed = 0
        with self._lru_lock:
            self._lru.clear()
        for path in list(self._entry_paths()):
            if spec_pattern is not None:
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        envelope = json.load(handle)
                    spec_name = envelope.get("spec", "")
                except (OSError, json.JSONDecodeError):
                    continue
                if not fnmatch.fnmatch(spec_name, spec_pattern):
                    continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        if spec_pattern is None:
            layout = self.root / f"v{LAYOUT_VERSION}"
            if layout.is_dir():
                for bucket in layout.iterdir():
                    if not bucket.is_dir():
                        continue
                    for path in bucket.iterdir():
                        if path.suffix == ".tmp":
                            try:
                                path.unlink()
                                removed += 1
                            except OSError:
                                pass
            if self.quarantine_dir.is_dir():
                for path in self.quarantine_dir.iterdir():
                    try:
                        path.unlink()
                        if not path.name.endswith(".reason.json"):
                            removed += 1
                    except OSError:
                        pass
        return removed

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self.root)!r}, code_version={self.code_version!r})"


def get_store(
    store: Union["ArtifactStore", str, os.PathLike, None],
    default: bool = False,
) -> Optional[ArtifactStore]:
    """Resolve a store argument: instance, path, or (optionally) the default.

    ``None`` resolves to the default store when ``default=True`` (the CLI and
    the server are durable by default) and to "no store" otherwise (library
    callers opt in explicitly — constructing a plain :class:`Pipeline` never
    touches the filesystem).
    """
    if isinstance(store, ArtifactStore):
        return store
    if store is not None:
        return ArtifactStore(store)
    if default:
        return ArtifactStore()
    return None
