"""Pluggable synthesis backends and the differential comparison mode.

A backend turns a :class:`~repro.api.spec.Spec` into a
:class:`~repro.api.artifacts.SynthesisArtifact`.  Two implementations ship
with the reproduction:

* :class:`StructuralBackend` — the paper's contribution: region
  approximations, never enumerating the reachability graph.  It consumes the
  cached ``analyze``/``refine`` artifacts of the calling pipeline, so level
  sweeps share the front-end.
* :class:`StateBasedBackend` — the exhaustive SIS/ASSASSIN-style baseline:
  full reachability analysis and exact regions.
* :class:`SATBackend` — provably minimum implementations from the CDCL
  descent of :mod:`repro.sat` (ROADMAP item 2's exact backend); its
  artifacts carry the per-signal minima counts in ``details``.

:func:`compare` is the *differential* mode: it runs two backends (by
default structural vs state-based — the paper's Table VI/VII comparison,
"the structural flow synthesizes the same circuits at a fraction of the
CPU time") on the same spec and cross-checks the circuits' next-state
behaviour on every reachable state code, as a first-class API call.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Protocol, Union, runtime_checkable

from repro.api.artifacts import Report, SynthesisArtifact, _clean
from repro.api.spec import Spec, SpecLike
from repro.statebased.nextstate import implied_value_bitsets
from repro.statebased.regions import compute_signal_regions
from repro.statebased.synthesis import synthesize_state_based
from repro.synthesis.engine import SynthesisError, SynthesisOptions
from repro.synthesis.engine import synthesize as _structural_synthesize


@runtime_checkable
class Backend(Protocol):
    """The backend protocol: spec + options in, synthesis artifact out."""

    name: str

    def synthesize(
        self,
        pipeline,
        spec: Spec,
        options: SynthesisOptions,
        max_markings: Optional[int] = None,
    ) -> SynthesisArtifact:
        ...


class StructuralBackend:
    """The structural (reachability-graph-free) flow of the paper."""

    name = "structural"

    def synthesize(
        self,
        pipeline,
        spec: Spec,
        options: SynthesisOptions,
        max_markings: Optional[int] = None,
    ) -> SynthesisArtifact:
        refinement = pipeline.refine(spec, options)
        if not refinement.csc_certified and not options.assume_csc:
            raise SynthesisError(
                "CSC could not be certified structurally for places "
                f"{set(refinement.unresolved_places)}; state-signal insertion "
                "would be required (pass assume_csc=True to override after an "
                "external CSC check)"
            )
        # a refinement loaded from the artifact store rebuilds its
        # approximation object (refined cover functions) on demand
        refinement.ensure_handles(spec.stg)
        start = time.perf_counter()
        result = _structural_synthesize(
            spec.stg, options, approximation=refinement.approximation
        )
        circuit = result.circuit
        return SynthesisArtifact(
            spec_name=spec.name,
            spec_hash=spec.content_hash,
            backend=self.name,
            level=options.level,
            literals=circuit.literal_count(),
            transistors=circuit.transistor_estimate(),
            latches=circuit.num_latches(),
            architectures={
                signal: impl.architecture.value
                for signal, impl in circuit.implementations.items()
            },
            seconds=time.perf_counter() - start,
            circuit=circuit,
            refinement=refinement,
        )


class StateBasedBackend:
    """The exhaustive state-based baseline (full reachability analysis)."""

    name = "statebased"

    def synthesize(
        self,
        pipeline,
        spec: Spec,
        options: SynthesisOptions,
        max_markings: Optional[int] = None,
    ) -> SynthesisArtifact:
        start = time.perf_counter()
        result = synthesize_state_based(
            spec.stg,
            signals=options.signals,
            check_specification=options.check_consistency,
            max_markings=max_markings,
            assume_csc=options.assume_csc,
        )
        circuit = result.circuit
        return SynthesisArtifact(
            spec_name=spec.name,
            spec_hash=spec.content_hash,
            backend=self.name,
            level=options.level,
            literals=circuit.literal_count(),
            transistors=circuit.transistor_estimate(),
            latches=circuit.num_latches(),
            architectures={
                signal: impl.architecture.value
                for signal, impl in circuit.implementations.items()
            },
            seconds=time.perf_counter() - start,
            markings=result.statistics.get("markings"),
            circuit=circuit,
            regions=result.regions,
        )


class SATBackend:
    """Exact synthesis: provably minimum circuits via CDCL descent."""

    name = "sat"

    def __init__(
        self,
        candidate_budget: int = 4096,
        max_solutions: int = 64,
        seed: int = 0,
        prefer: Optional[str] = None,
    ):
        self.candidate_budget = candidate_budget
        self.max_solutions = max_solutions
        self.seed = seed
        self.prefer = prefer

    def synthesize(
        self,
        pipeline,
        spec: Spec,
        options: SynthesisOptions,
        max_markings: Optional[int] = None,
    ) -> SynthesisArtifact:
        from repro.sat.synthesize import exact_synthesize

        start = time.perf_counter()
        result = exact_synthesize(
            spec.stg,
            signals=options.signals,
            check_specification=options.check_consistency,
            max_markings=max_markings,
            assume_csc=options.assume_csc,
            candidate_budget=self.candidate_budget,
            max_solutions=self.max_solutions,
            seed=self.seed,
            prefer=self.prefer,
        )
        circuit = result.circuit
        return SynthesisArtifact(
            spec_name=spec.name,
            spec_hash=spec.content_hash,
            backend=self.name,
            level=options.level,
            literals=circuit.literal_count(),
            transistors=circuit.transistor_estimate(),
            latches=circuit.num_latches(),
            architectures={
                signal: impl.architecture.value
                for signal, impl in circuit.implementations.items()
            },
            seconds=time.perf_counter() - start,
            markings=result.statistics.get("markings"),
            details={
                "exact": True,
                "minima": result.statistics.get("minima", {}),
                "signals": result.statistics.get("signals", {}),
            },
            circuit=circuit,
            regions=result.regions,
        )


_BACKENDS = {
    StructuralBackend.name: StructuralBackend,
    StateBasedBackend.name: StateBasedBackend,
    SATBackend.name: SATBackend,
}

BACKEND_NAMES = tuple(sorted(_BACKENDS))


def register_backend(name: str, factory) -> None:
    """Register a custom backend factory under a name."""
    _BACKENDS[name] = factory


def get_backend(backend: Union[str, Backend]) -> Backend:
    """Resolve a backend name (or pass an instance through)."""
    if isinstance(backend, str):
        try:
            return _BACKENDS[backend]()
        except KeyError as error:
            raise ValueError(
                f"unknown backend {backend!r}; available: {', '.join(sorted(_BACKENDS))}"
            ) from error
    if isinstance(backend, Backend):
        return backend
    raise TypeError(f"backend must be a name or a Backend, got {type(backend).__name__}")


# ---------------------------------------------------------------------- #
# Differential mode
# ---------------------------------------------------------------------- #


@dataclass
class ComparisonReport:
    """Cross-check of two backends' circuits on one spec.

    ``matching`` is true when, at every reachable state code, both circuits
    produce the same next value for every implemented signal *and* that
    value agrees with the specification's implied next-state function.

    ``structural``/``statebased`` hold the first and second backend's
    reports respectively — the historical names of the default pair; for
    other pairs consult ``backends`` for what each slot actually ran.
    """

    spec_name: str
    spec_hash: str
    level: int
    checked_markings: int
    matching: bool
    mismatches: list[dict] = field(default_factory=list)
    structural: Optional[Report] = None
    statebased: Optional[Report] = None
    backends: tuple[str, str] = ("structural", "statebased")

    def __bool__(self) -> bool:
        return self.matching

    @property
    def speedup(self) -> Optional[float]:
        """State-based / structural synthesis-time ratio (None if degenerate)."""
        if self.structural is None or self.statebased is None:
            return None
        structural = self.structural.total_seconds
        if structural <= 0:
            return None
        return self.statebased.total_seconds / structural

    def to_dict(self) -> dict:
        data = {
            "spec": self.spec_name,
            "spec_hash": self.spec_hash,
            "level": self.level,
            "checked_markings": self.checked_markings,
            "matching": self.matching,
            "mismatches": _clean(self.mismatches),
            "backends": list(self.backends),
        }
        if self.structural is not None:
            data["structural"] = self.structural.to_dict()
        if self.statebased is not None:
            data["statebased"] = self.statebased.to_dict()
        if self.speedup is not None:
            data["speedup"] = round(self.speedup, 3)
        return data


def compare(
    spec: SpecLike,
    options: Optional[SynthesisOptions] = None,
    pipeline=None,
    max_markings: Optional[int] = None,
    max_mismatches: int = 20,
    backends: tuple[str, str] = ("structural", "statebased"),
) -> ComparisonReport:
    """Run two backends and cross-check the circuits' next-state functions.

    Every reachable marking of the specification is encoded and both
    circuits are evaluated on its code; disagreements (between the circuits,
    or between either circuit and the spec-implied next-state value) are
    collected as mismatch records.  Requires an enumerable state space — the
    comparison *is* the state-based cost the structural flow avoids.

    ``backends`` selects the pair (first fills the report's ``structural``
    slot, second the ``statebased`` slot); the default reproduces the
    paper's comparison, ``("structural", "sat")`` or ``("statebased",
    "sat")`` cross-check the exact backend.
    """
    from repro.api.pipeline import Pipeline

    spec = Spec.load(spec)
    options = options or SynthesisOptions()
    if pipeline is None:
        pipeline = Pipeline()

    first_name, second_name = backends
    structural = pipeline.run(spec, options, backend=first_name, max_markings=max_markings)
    statebased = pipeline.run(spec, options, backend=second_name, max_markings=max_markings)

    stg = spec.stg
    # a state-based-substrate backend already enumerated and encoded the
    # graph; re-enumerate only if no report carries its exact regions
    regions = statebased.synthesis.regions
    if regions is None:
        regions = structural.synthesis.regions
    if regions is None:
        regions = compute_signal_regions(stg, compute_backward=False)
    signals = [s for s in stg.non_input_signals]
    encoded = regions.encoded
    # per-signal implied-value bitsets; circuit evaluations cached per
    # distinct packed code (both circuits are functions of the code alone)
    on_bits, off_bits = implied_value_bitsets(regions, signals)
    packed = encoded.packed_codes
    eval_cache: dict[int, dict[str, tuple[int, int]]] = {}
    mismatches: list[dict] = []
    mismatch_count = 0
    checked = 0
    for index in range(len(packed)):
        code_int = packed[index]
        state_bit = 1 << index
        checked += 1
        values = eval_cache.get(code_int)
        if values is None:
            code = encoded.code_dict_of_int(code_int)
            values = {
                signal: (
                    structural.circuit.next_value(signal, code),
                    statebased.circuit.next_value(signal, code),
                )
                for signal in signals
            }
            eval_cache[code_int] = values
        for signal in signals:
            if on_bits[signal] & state_bit:
                implied: Optional[int] = 1
            elif off_bits[signal] & state_bit:
                implied = 0
            else:
                implied = None
            s_value, b_value = values[signal]
            if s_value == b_value and (implied is None or implied == s_value):
                continue
            mismatch_count += 1
            # matching keys on the count; the detail records are capped
            if len(mismatches) < max_mismatches:
                marking = encoded.marking_list[index]
                mismatches.append(
                    {
                        "signal": signal,
                        "code": encoded.code_string(marking),
                        "structural": s_value,
                        "statebased": b_value,
                        "specified": implied,
                    }
                )
    return ComparisonReport(
        spec_name=spec.name,
        spec_hash=spec.content_hash,
        level=options.level,
        checked_markings=checked,
        matching=mismatch_count == 0,
        mismatches=mismatches,
        structural=structural,
        statebased=statebased,
        backends=(first_name, second_name),
    )
