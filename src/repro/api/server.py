"""The ``repro serve`` daemon: synthesis as a long-running service.

Production flows treat synthesis as a service over a persistent design
database rather than a one-shot script: the front-end cost of a spec is paid
once, and every later request — from CI, from a sweep, from another process
— is a cache hit.  This module exposes the store-backed
:class:`~repro.api.pipeline.Pipeline` over plain HTTP/JSON using only the
standard library (``http.server.ThreadingHTTPServer``), so a warm server
plus the on-disk :class:`~repro.api.store.ArtifactStore` gives both
process-lifetime *and* cross-process durability.

Endpoints (all JSON)::

    GET  /health         liveness only: uptime, code version (never touches
                         the store or the pipeline)
    GET  /ready          readiness: probes the artifact store and reports
                         queue depth; 503 when the store is unreachable
    GET  /benchmarks     registered benchmark names
    GET  /metrics        Prometheus text exposition (the one non-JSON
                         endpoint; empty families until --obs/REPRO_OBS)
    GET  /cache/stats    pipeline counters + store statistics
    POST /cache/clear    drop the in-memory cache (``{"disk": true}`` also
                         clears the on-disk store)
    POST /synthesize     {"spec": <name or .g text>, "level": 5, ...}
    POST /synthesize/batch  {"items": [<synthesize bodies>], "jobs": N}
    POST /verify         {"spec": ..., "mapped": bool, ...}
    POST /compare        {"spec": ..., "level": ..., "max_markings": ...}
    POST /export         {"spec": ..., "format": "verilog", ...}

``/synthesize`` responds with the lossless ``Report.to_json`` document plus
a ``resolution`` summary — how many stages were computed, served from
memory, or served from the store — which is what the CI smoke test asserts
on (a repeated request must resolve without computation).

Requests are serialized through one lock: correctness first (the pipeline's
memo dict is not concurrency-safe), and the workload is cache-dominated —
the durable store, not request parallelism, is the scaling story of the
serving layer.  Overload is handled by *shedding*, not queueing without
bound: at most ``max_queue`` requests may hold or wait for the service lock;
the next one is rejected immediately with ``503`` and a ``Retry-After``
header.  An admitted request waits at most ``request_timeout`` seconds for
the lock before it is shed with ``504 deadline_exceeded`` — a slow giant
synthesis can delay later requests, but never strand them silently.

Every error response carries a structured, stable body::

    {"error": {"code": "spec_error", "message": "...", "retryable": false}}

``code`` is machine-dispatchable (clients retry on ``retryable`` alone),
``message`` is human-readable; server-side tracebacks are logged to stderr
and never leak into a response.  Use :class:`repro.api.client.Client` —
which retries retryable responses with backoff — to talk to the server from
Python.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from repro.api.backends import compare
from repro.api.events import fanout
from repro.api.pipeline import Pipeline
from repro.api.spec import Spec, SpecError
from repro.api.store import TMP_SWEEP_AGE, get_store
from repro.gates.exporters import EXPORT_FORMATS, export_netlist
from repro.gates.ir import NetlistError
from repro.obs import ObsLike, TRACE_HEADER, get_obs, parse_header
from repro.petri.reachability import StateSpaceLimitExceeded
from repro.statebased.synthesis import StateBasedSynthesisError
from repro.synthesis.engine import SynthesisError, SynthesisOptions

#: request errors mapped to HTTP 400 (bad input, not server failure).
#: KeyError/TypeError are deliberately absent — those indicate server bugs
#: and must surface as 500.  Bare ValueError stays: the input-validation
#: paths of the stack (library resolution, export formats, option parsing)
#: raise it for bad user input, the same contract the CLI maps to exit 2.
_CLIENT_ERRORS = (
    SpecError,
    SynthesisError,
    StateBasedSynthesisError,
    NetlistError,
    StateSpaceLimitExceeded,
    ValueError,
)

#: stable machine-readable codes for the 400 family (first match wins, so
#: subclasses must precede their bases)
_CLIENT_ERROR_CODES = (
    (SpecError, "spec_error"),
    (StateBasedSynthesisError, "synthesis_error"),
    (SynthesisError, "synthesis_error"),
    (NetlistError, "netlist_error"),
    (StateSpaceLimitExceeded, "state_space_limit"),
    (ValueError, "bad_request"),
)


def _client_error_code(error: BaseException) -> str:
    for exc_type, code in _CLIENT_ERROR_CODES:
        if isinstance(error, exc_type):
            return code
    return "bad_request"


def _error_body(code: str, message: str, retryable: bool = False) -> dict:
    """The structured error document every non-2xx response carries."""
    return {"error": {"code": code, "message": message, "retryable": retryable}}


class ServerOverloadedError(RuntimeError):
    """The admission queue is full; the request was shed, not queued."""

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class RequestDeadlineError(RuntimeError):
    """An admitted request waited longer than the per-request deadline."""

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


def _spec_of(body: dict):
    source = body.get("spec")
    if not source:
        raise ValueError("request body must include a non-empty 'spec'")
    return Spec.load(source)


class SynthesisService:
    """The request-facing facade over one shared store-backed pipeline.

    ``max_cached_artifacts`` bounds the pipeline's in-memory cache: once
    more artifacts than that are held, the cache is evicted wholesale after
    the request (the store, when attached, makes the eviction cheap — the
    next request reloads from disk instead of recomputing).  This keeps a
    long-lived daemon fed with a stream of distinct specs from growing
    without bound.

    ``max_queue`` bounds *admission*: at most that many locked requests may
    be in flight (one running, the rest waiting) before new ones are shed
    with :class:`ServerOverloadedError`.  ``request_timeout`` bounds how
    long an admitted request waits for the service lock before it is shed
    with :class:`RequestDeadlineError` (``None`` waits indefinitely).

    Fleet-mode knobs (PR 9): ``worker_id`` tags ``/health`` and every
    response's ``X-Repro-Worker`` header with the worker's ``slot.gen``
    identity; ``max_requests`` arms the recycle budget — after that many
    locked requests the ``on_recycle`` callback fires once and the worker's
    main loop drains and exits with :data:`~repro.api.fleet.EXIT_RECYCLED`;
    ``chaos`` wires the deterministic ``worker.kill`` fault site into the
    dispatch path (scoped by endpoint name); ``ready_ttl`` caches the
    store's readiness probe so a polling load balancer does not hit the
    filesystem on every ``/ready``.
    """

    def __init__(
        self,
        store=None,
        pipeline: Optional[Pipeline] = None,
        max_cached_artifacts: int = 1024,
        max_queue: int = 8,
        request_timeout: Optional[float] = None,
        worker_id: Optional[str] = None,
        max_requests: Optional[int] = None,
        on_recycle: Optional[Callable[[], None]] = None,
        chaos=None,
        ready_ttl: float = 1.0,
        obs: ObsLike = None,
    ):
        # resolve obs first (instance / grammar / $REPRO_OBS), falling back
        # to whatever the caller's pipeline already carries; share one
        # bundle across service, pipeline and store so the worker's HTTP
        # span and its stage spans nest in one trace sink
        resolved_obs = get_obs(obs)
        if resolved_obs is None and pipeline is not None:
            resolved_obs = pipeline.obs
        self.obs = resolved_obs
        if pipeline is None:
            pipeline = Pipeline(store=store, obs=self.obs)
        elif self.obs is not None and pipeline.obs is None:
            pipeline.obs = self.obs
            if pipeline.store is not None and pipeline.store.obs is None:
                pipeline.store.obs = self.obs
        self.pipeline = pipeline
        self.max_cached_artifacts = max_cached_artifacts
        self.max_queue = max_queue
        self.request_timeout = request_timeout
        self.worker_id = worker_id
        self.max_requests = max_requests
        self.on_recycle = on_recycle
        self.chaos = chaos
        self.ready_ttl = ready_ttl
        self.draining = False  # set on SIGTERM/recycle: /ready goes red
        self.lock = threading.Lock()
        self._admission = threading.Lock()  # guards the two counters below
        self.waiting = 0  # locked requests in flight (running + queued)
        self.shed = 0  # requests rejected by overload or deadline
        self.started = time.time()
        self.requests = 0
        self.locked_requests = 0  # served locked requests (recycle budget)
        self.evictions = 0
        self._recycled = False
        self._probe_cache: Optional[tuple[float, bool, Optional[str]]] = None
        self._events: list = []
        self._in_request = False
        # compose with (not replace) any callback the caller's pipeline carries
        pipeline.on_event = fanout(pipeline.on_event, self._collect)

    def _collect(self, event) -> None:
        # only record events raised by the handler running under the lock;
        # a shared pipeline driven directly from outside a request must not
        # grow (or pollute) the next request's resolution telemetry
        if self._in_request and event.kind == "stage":
            self._events.append(event)

    def _options(self, body: dict) -> SynthesisOptions:
        try:
            level = int(body.get("level", 5))
        except (TypeError, ValueError) as error:
            raise ValueError(f"'level' must be an integer 1..5: {error}") from error
        return SynthesisOptions(
            level=level,
            assume_csc=bool(body.get("assume_csc", False)),
        )

    def _maybe_evict(self) -> None:
        cached = sum(self.pipeline.cache_info().values())
        if cached > self.max_cached_artifacts:
            self.pipeline.evict_cache()
            self.evictions += 1

    def _resolution(self) -> dict:
        counts = {"computed": 0, "memory": 0, "store": 0, "coalesced": 0}
        stages = []
        for event in self._events:
            counts[event.status] = counts.get(event.status, 0) + 1
            stages.append({"stage": event.stage, "status": event.status})
        return {**counts, "stages": stages}

    # ------------------------------------------------------------------ #
    # Request handlers (called under the lock)
    # ------------------------------------------------------------------ #

    def synthesize(self, body: dict) -> dict:
        spec = _spec_of(body)
        report = self.pipeline.run(
            spec,
            self._options(body),
            backend=body.get("backend", "structural"),
            map_technology=bool(body.get("map", False)),
            verify=bool(body.get("verify", False)),
            verify_mapped=bool(body.get("verify_mapped", False)),
            library=body.get("library"),
            max_markings=body.get("max_markings"),
        )
        return {"report": report.to_json(), "resolution": self._resolution()}

    def synthesize_batch(self, body: dict) -> dict:
        """Run many synthesize bodies through one :class:`Scheduler` call.

        ``{"items": [<synthesize bodies>], "jobs": N}`` — with ``jobs > 1``
        (and a store attached) the items fan out over the process-pool
        scheduler; otherwise they run sequentially through this worker's
        shared pipeline.  The response carries one entry per item, in
        order, each with its own ``ok``/``report``-or-``error`` plus — in
        sequential mode — the per-item stage resolution (pool items
        resolve in child processes, so their resolution is ``null``).
        Item failures are reported in place, never as a batch-wide error.
        """
        from repro.api.scheduler import Job, Scheduler

        items = body.get("items")
        if not isinstance(items, list) or not items:
            raise ValueError("batch body must include a non-empty 'items' list")
        try:
            jobs_n = int(body.get("jobs") or 0)
        except (TypeError, ValueError) as error:
            raise ValueError(f"'jobs' must be an integer: {error}") from error
        job_list = []
        job_positions = []  # job index -> item index
        parse_failures: dict = {}  # item index -> error entry
        for position, item in enumerate(items):
            if not isinstance(item, dict):
                raise ValueError("each batch item must be a JSON object")
            try:
                job = Job(
                    spec=_spec_of(item),
                    options=self._options(item),
                    backend=item.get("backend", "structural"),
                    map_technology=bool(item.get("map", False)),
                    verify=bool(item.get("verify", False)),
                    verify_mapped=bool(item.get("verify_mapped", False)),
                    library=item.get("library"),
                    max_markings=item.get("max_markings"),
                )
            except _CLIENT_ERRORS as error:
                # a bad item fails in place — the rest of the batch runs
                parse_failures[position] = {
                    "spec": str(item.get("spec", ""))[:120],
                    "ok": False,
                    "attempts": 0,
                    "seconds": 0.0,
                    "resolution": None,
                    "error": {
                        "code": _client_error_code(error),
                        "message": str(error),
                    },
                }
                continue
            job_list.append(job)
            job_positions.append(position)
        # the process pool needs a store the children can reopen by path;
        # without one the batch degrades to sequential resolution here
        pool = jobs_n > 1 and len(job_list) > 1 and self.pipeline.store is not None
        scheduler = Scheduler(
            jobs=jobs_n if pool else 1,
            store=self.pipeline.store if pool else None,
            pipeline=None if pool else self.pipeline,
            obs=self.obs,
        )
        results: list = [None] * len(job_list)
        resolutions: list = [None] * len(job_list)
        mark = 0
        if job_list:
            for result in scheduler.iter_results(job_list):
                results[result.index] = result
                if not pool:
                    # sequential mode yields right after each job, so the
                    # stage events since the previous yield belong to this item
                    events, mark = self._events[mark:], len(self._events)
                    counts = {"computed": 0, "memory": 0, "store": 0, "coalesced": 0}
                    stages = []
                    for event in events:
                        counts[event.status] = counts.get(event.status, 0) + 1
                        stages.append({"stage": event.stage, "status": event.status})
                    resolutions[result.index] = {**counts, "stages": stages}
        entries: list = [None] * len(items)
        for position, entry in parse_failures.items():
            entries[position] = entry
        for position, result, resolution in zip(job_positions, results, resolutions):
            entry = {
                "spec": result.job.spec.name,
                "ok": result.ok,
                "attempts": result.attempts,
                "seconds": round(result.seconds, 6),
                "resolution": resolution,
            }
            if result.ok:
                entry["report"] = result.report.to_json()
            else:
                code = (
                    _client_error_code(result.error)
                    if isinstance(result.error, _CLIENT_ERRORS)
                    else "internal"
                )
                entry["error"] = {"code": code, "message": str(result.error)}
            entries[position] = entry
        return {
            "results": entries,
            "pool": pool,
            "resolution": self._resolution(),
        }

    def verify(self, body: dict) -> dict:
        spec = _spec_of(body)
        options = self._options(body)
        backend = body.get("backend", "structural")
        max_markings = body.get("max_markings")
        verification = self.pipeline.verify(
            spec, options, backend=backend, max_markings=max_markings
        )
        result = {"verify": verification.to_json()}
        if body.get("mapped", False):
            mapped = self.pipeline.verify_mapped(
                spec,
                options,
                backend=backend,
                library=body.get("library"),
                max_markings=max_markings,
            )
            result["verify_mapped"] = mapped.to_json()
        result["resolution"] = self._resolution()
        return result

    def compare(self, body: dict) -> dict:
        spec = _spec_of(body)
        report = compare(
            spec,
            self._options(body),
            pipeline=self.pipeline,
            max_markings=body.get("max_markings"),
        )
        return {"comparison": report.to_dict(), "resolution": self._resolution()}

    def export(self, body: dict) -> dict:
        spec = _spec_of(body)
        fmt = body.get("format", "verilog")
        if fmt not in EXPORT_FORMATS:
            raise ValueError(
                f"unknown export format {fmt!r} (available: {', '.join(EXPORT_FORMATS)})"
            )
        mapping = self.pipeline.map(
            spec,
            self._options(body),
            backend=body.get("backend", "structural"),
            library=body.get("library"),
            max_markings=body.get("max_markings"),
        )
        return {
            "format": fmt,
            "text": export_netlist(mapping.netlist, fmt),
            "gates": mapping.gate_count,
            "total_area": mapping.total_area,
            "resolution": self._resolution(),
        }

    def cache_stats(self, body: Optional[dict] = None) -> dict:
        stats = {
            "stage_calls": dict(self.pipeline.stage_calls),
            "store_hits": dict(self.pipeline.store_hits),
            "store_misses": dict(self.pipeline.store_misses),
            "coalesced": dict(self.pipeline.coalesced),
            "memory_entries": self.pipeline.cache_info(),
            "evictions": self.evictions,
            "requests": self.requests,
            "uptime_seconds": time.time() - self.started,
        }
        if self.worker_id is not None:
            stats["worker"] = self.worker_id
        flights = getattr(self.pipeline, "flights", None)
        if flights is not None:
            stats["flights"] = {
                "led": flights.led,
                "followed": flights.followed,
                "degraded": flights.degraded,
            }
        if self.pipeline.store is not None:
            stats["store"] = self.pipeline.store.stats()
        return stats

    def cache_clear(self, body: Optional[dict] = None) -> dict:
        self.pipeline.clear_cache()
        removed = 0
        if (body or {}).get("disk") and self.pipeline.store is not None:
            removed = self.pipeline.store.clear()
        return {"cleared": True, "disk_entries_removed": removed}

    def health(self, body: Optional[dict] = None) -> dict:
        """Liveness: the process answers.  Never touches store or pipeline
        state beyond reading the attached store's path, so a wedged store
        (full disk, dead mount) keeps liveness green while :meth:`ready`
        goes red — the split orchestrators expect."""
        from repro.api.store import CODE_VERSION

        payload = {
            "status": "ok",
            "uptime_seconds": time.time() - self.started,
            "requests": self.requests,
            "code_version": CODE_VERSION,
            "store": str(self.pipeline.store.root) if self.pipeline.store else None,
            "pid": os.getpid(),
        }
        if self.worker_id is not None:
            payload["worker"] = self.worker_id
        return payload

    def _probe_store(self) -> tuple[bool, Optional[str]]:
        """``store.probe()`` behind a short TTL cache.

        Readiness is polled (load balancers, orchestration loops, the fleet
        bench) at rates far above how fast a store goes bad; caching the
        filesystem probe for ``ready_ttl`` seconds keeps ``/ready`` cheap
        without meaningfully delaying the red flag.  A negative result is
        cached too — a dead mount also should not be stat-hammered.
        """
        store = self.pipeline.store
        if store is None:
            return True, None
        now = time.monotonic()
        cached = self._probe_cache
        if cached is not None and now - cached[0] < self.ready_ttl:
            return cached[1], cached[2]
        reason = None
        try:
            store_ok = store.probe()
        except OSError as error:
            store_ok = False
            reason = f"store probe failed: {error}"
        else:
            if not store_ok:
                reason = f"store root not writable: {store.root}"
        self._probe_cache = (now, store_ok, reason)
        return store_ok, reason

    def ready(self, body: Optional[dict] = None) -> dict:
        """Readiness: can this server *usefully* take traffic right now?

        Probes the artifact store (layout creatable and writable, cached
        for ``ready_ttl`` seconds) and reports the admission queue.  A
        draining worker reports not-ready immediately.  ``ready: false``
        travels as HTTP 503 so load balancers drain the instance without
        killing it.
        """
        store = self.pipeline.store
        store_ok, reason = self._probe_store()
        if self.draining:
            store_ok = False
            reason = "draining"
        payload = {
            "ready": store_ok,
            "store": str(store.root) if store is not None else None,
            "waiting": self.waiting,
            "max_queue": self.max_queue,
            "shed": self.shed,
        }
        if self.worker_id is not None:
            payload["worker"] = self.worker_id
        if reason is not None:
            payload["reason"] = reason
        return payload

    def benchmarks(self, body: Optional[dict] = None) -> dict:
        from repro.benchmarks.registry import list_benchmarks

        return {"benchmarks": list_benchmarks()}

    def metrics(self, body: Optional[dict] = None) -> dict:
        """The Prometheus text exposition of this process's registry.

        The handler special-cases the transport (``text/plain`` instead of
        the JSON every other endpoint speaks).  Without an active obs
        bundle the scrape answers 200 with a hint comment, so probing
        ``/metrics`` is always safe.
        """
        if self.obs is None:
            text = (
                "# repro observability is disabled on this worker\n"
                "# enable with `repro serve --obs ...` or REPRO_OBS=on\n"
            )
        else:
            text = self.obs.render_metrics()
        return {"prometheus": text}

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #

    GET_ROUTES = {
        "/health": "health",
        "/ready": "ready",
        "/benchmarks": "benchmarks",
        "/metrics": "metrics",
        "/cache/stats": "cache_stats",
    }
    POST_ROUTES = {
        "/synthesize": "synthesize",
        "/synthesize/batch": "synthesize_batch",
        "/verify": "verify",
        "/compare": "compare",
        "/export": "export",
        "/cache/clear": "cache_clear",
        "/cache/stats": "cache_stats",
    }
    #: endpoints that never touch the pipeline's memo state — answered
    #: without the lock (and without admission control) so liveness,
    #: readiness and metrics scrapes survive a long-running synthesis
    LOCK_FREE = {"health", "ready", "benchmarks", "metrics"}

    def _admit(self) -> None:
        """Reserve an admission slot or shed the request immediately."""
        with self._admission:
            if self.waiting >= self.max_queue:
                self.shed += 1
                raise ServerOverloadedError(
                    f"server overloaded: {self.waiting} requests in flight "
                    f"(max_queue={self.max_queue})",
                    retry_after=max(1.0, self.request_timeout or 1.0),
                )
            self.waiting += 1

    def dispatch(self, method: str, path: str, body: Optional[dict]):
        routes = self.GET_ROUTES if method == "GET" else self.POST_ROUTES
        name = routes.get(path)
        if name is None:
            return None
        if self.obs is None:
            return self._dispatch_named(name, body)
        started = time.perf_counter()
        try:
            result = self._dispatch_named(name, body)
        except BaseException:
            self.obs.request_errors.inc(endpoint=name)
            raise
        finally:
            self.obs.requests.inc(endpoint=name)
            self.obs.request_seconds.observe(
                time.perf_counter() - started, endpoint=name
            )
        return result

    def _dispatch_named(self, name: str, body: Optional[dict]):
        if name in self.LOCK_FREE:
            self.requests += 1
            return getattr(self, name)(body)
        if self.chaos is not None:
            # the worker.kill fault site: one deterministic opportunity per
            # admitted locked request, scoped by endpoint name — the probe
            # endpoints stay exempt so supervision itself is never the
            # trigger.  When a rule fires the process hard-exits mid-request
            # and the supervisor + client retries absorb the loss.
            self.chaos.kill_worker(scope=name)
        self._admit()
        try:
            timeout = self.request_timeout if self.request_timeout is not None else -1
            if not self.lock.acquire(timeout=timeout):
                with self._admission:
                    self.shed += 1
                raise RequestDeadlineError(
                    f"request waited longer than {self.request_timeout}s "
                    f"for the service lock",
                    retry_after=max(1.0, self.request_timeout or 1.0),
                )
            try:
                self.requests += 1
                self._events = []
                self._in_request = True
                try:
                    return getattr(self, name)(body)
                finally:
                    self._in_request = False
                    self._maybe_evict()
                    self._consume_budget()
            finally:
                self.lock.release()
        finally:
            with self._admission:
                self.waiting -= 1

    def _consume_budget(self) -> None:
        """Count a served locked request against the recycle budget."""
        self.locked_requests += 1
        if (
            self.max_requests is not None
            and not self._recycled
            and self.locked_requests >= self.max_requests
        ):
            # planned retirement: fire the recycle callback exactly once;
            # the worker main loop drains and exits EXIT_RECYCLED, and the
            # supervisor respawns a fresh generation
            self._recycled = True
            self.draining = True
            if self.on_recycle is not None:
                self.on_recycle()


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP plumbing around :class:`SynthesisService`."""

    server_version = "repro-serve/1"
    #: set by :func:`create_server`
    service: SynthesisService

    # quiet by default; ``create_server(verbose=True)`` restores logging
    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send(
        self, status: int, payload: dict, headers: Optional[dict] = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.service.worker_id is not None:
            # which fleet worker answered (slot.generation) — the bench and
            # the chaos tests use this to observe kernel load-balancing
            self.send_header("X-Repro-Worker", self.service.worker_id)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str) -> None:
        """Plain-text response (the ``/metrics`` exposition transport)."""
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        if self.service.worker_id is not None:
            self.send_header("X-Repro-Worker", self.service.worker_id)
        self.end_headers()
        self.wfile.write(body)

    def _dispatch_traced(self, method: str, body: Optional[dict]):
        """Dispatch under an ``http:<path>`` span when tracing is active.

        The headers live here (``dispatch`` only sees path + body), so this
        is where a propagated ``X-Repro-Trace`` context is adopted: the
        span joins the client's trace and every pipeline stage span nests
        under it.  Probe GETs without a propagated context stay untraced —
        readiness polls must not flood the sink.
        """
        obs = self.service.obs
        if obs is None:
            return self.service.dispatch(method, self.path, body)
        parent = parse_header(self.headers.get(TRACE_HEADER))
        if parent is None and method != "POST":
            return self.service.dispatch(method, self.path, body)
        with obs.tracer.span(
            "http:" + self.path,
            parent=parent,
            method=method,
            worker=self.service.worker_id or "",
        ):
            return self.service.dispatch(method, self.path, body)

    def _handle(self, method: str) -> None:
        body: Optional[dict] = None
        if method == "POST":
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b"{}"
            try:
                body = json.loads(raw.decode("utf-8") or "{}")
            except json.JSONDecodeError as error:
                self._send(
                    400, _error_body("bad_request", f"malformed JSON body: {error}")
                )
                return
            if not isinstance(body, dict):
                self._send(
                    400, _error_body("bad_request", "request body must be a JSON object")
                )
                return
        try:
            result = self._dispatch_traced(method, body)
        except ServerOverloadedError as error:
            self._send(
                503,
                _error_body("overloaded", str(error), retryable=True),
                headers={"Retry-After": str(int(error.retry_after))},
            )
            return
        except RequestDeadlineError as error:
            self._send(
                504,
                _error_body("deadline_exceeded", str(error), retryable=True),
                headers={"Retry-After": str(int(error.retry_after))},
            )
            return
        except _CLIENT_ERRORS as error:
            self._send(400, _error_body(_client_error_code(error), str(error)))
            return
        except Exception as error:  # noqa: BLE001 — the daemon must not die
            # the traceback stays server-side: clients get a stable code and
            # the exception summary, never internal frames
            import traceback

            self.log_error(
                "unhandled %s in %s %s", type(error).__name__, method, self.path
            )
            traceback.print_exc()
            self._send(
                500,
                _error_body("internal", f"{type(error).__name__}: {error}"),
            )
            return
        if result is None:
            self._send(
                404,
                _error_body("not_found", f"unknown endpoint {method} {self.path}"),
            )
            return
        if method == "GET" and self.path == "/metrics":
            self._send_text(200, result["prometheus"])
            return
        if self.path == "/ready" and result.get("ready") is False:
            # readiness failure travels as 503 so load balancers drain us
            self._send(503, result, headers={"Retry-After": "5"})
            return
        self._send(200, result)

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        self._handle("POST")


class FleetHTTPServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` that can share its port via SO_REUSEPORT.

    Fleet workers all bind the same ``(host, port)``; the kernel then
    load-balances incoming connections across their accept queues.  The
    flag is set between socket creation and bind (``server_bind``), which
    is why this is a subclass rather than a post-hoc ``setsockopt``.
    """

    #: set by :func:`create_server` before binding
    reuse_port = False

    #: ``ThreadingHTTPServer`` marks handler threads as daemons, and the
    #: mixin's ``_Threads`` registry silently *skips* daemon threads — so
    #: ``server_close()`` would join nothing and a drain could drop an
    #: in-flight response on the floor.  Non-daemon handler threads make
    #: ``server_close()`` the drain barrier the fleet contract needs
    #: (connections are one-shot HTTP/1.0 exchanges, so joins are bounded
    #: by request time, never by an idle keep-alive).
    daemon_threads = False

    def server_bind(self) -> None:
        if self.reuse_port:
            if not hasattr(socket, "SO_REUSEPORT"):
                raise OSError("SO_REUSEPORT is not supported on this platform")
            self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()


def create_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    store=None,
    pipeline: Optional[Pipeline] = None,
    verbose: bool = False,
    max_queue: int = 8,
    request_timeout: Optional[float] = None,
    reuse_port: bool = False,
    worker_id: Optional[str] = None,
    max_requests: Optional[int] = None,
    on_recycle=None,
    chaos=None,
    ready_ttl: float = 1.0,
    obs: ObsLike = None,
) -> ThreadingHTTPServer:
    """Build a ready-to-serve (but not yet serving) HTTP server.

    ``port=0`` binds an ephemeral port; read the actual one from
    ``server.server_address[1]``.  The in-process tests and the CI smoke
    job drive the returned server from a background thread.  The fleet
    knobs (``reuse_port`` through ``ready_ttl``) are documented on
    :class:`SynthesisService`; single-process callers never pass them.
    """
    service = SynthesisService(
        store=store,
        pipeline=pipeline,
        max_queue=max_queue,
        request_timeout=request_timeout,
        worker_id=worker_id,
        max_requests=max_requests,
        on_recycle=on_recycle,
        chaos=chaos,
        ready_ttl=ready_ttl,
        obs=obs,
    )
    handler = type("_BoundHandler", (_Handler,), {"service": service})
    server_cls = type("_BoundServer", (FleetHTTPServer,), {"reuse_port": reuse_port})
    server = server_cls((host, port), handler)
    server.verbose = verbose
    server.service = service  # type: ignore[attr-defined]
    return server


def run_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    store=None,
    verbose: bool = False,
    max_queue: int = 8,
    request_timeout: Optional[float] = None,
    obs: ObsLike = None,
) -> int:
    """Bind, announce, and serve until interrupted (the CLI's serve loop)."""
    store = get_store(store)  # accept a path like every other entry point
    if store is not None:
        # startup maintenance: a previous daemon killed mid-write leaves
        # *.tmp orphans; a crashed writer may have left damage behind
        swept = store.sweep(tmp_older_than=TMP_SWEEP_AGE)
        if swept["tmp_removed"] or swept["stale_quarantined"]:
            print(
                f"repro serve: store sweep removed {swept['tmp_removed']} orphaned "
                f"temp file(s), quarantined {swept['stale_quarantined']} stale "
                f"entr(y/ies)",
                flush=True,
            )
    server = create_server(
        host=host,
        port=port,
        store=store,
        verbose=verbose,
        max_queue=max_queue,
        request_timeout=request_timeout,
        obs=obs,
    )
    bound_host, bound_port = server.server_address[:2]
    print(
        f"repro serve: listening on http://{bound_host}:{bound_port} "
        f"(store: {store.root if store is not None else 'disabled'})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    """``python -m repro.api.server`` entry point.

    Delegates to the CLI's ``serve`` subcommand so there is exactly one
    argument parser for the daemon's flags.
    """
    import sys

    from repro.api.cli import main as cli_main

    return cli_main(["serve", *(argv if argv is not None else sys.argv[1:])])


if __name__ == "__main__":
    raise SystemExit(main())
