"""The ``repro serve`` daemon: synthesis as a long-running service.

Production flows treat synthesis as a service over a persistent design
database rather than a one-shot script: the front-end cost of a spec is paid
once, and every later request — from CI, from a sweep, from another process
— is a cache hit.  This module exposes the store-backed
:class:`~repro.api.pipeline.Pipeline` over plain HTTP/JSON using only the
standard library (``http.server.ThreadingHTTPServer``), so a warm server
plus the on-disk :class:`~repro.api.store.ArtifactStore` gives both
process-lifetime *and* cross-process durability.

Endpoints (all JSON)::

    GET  /health         liveness, uptime, code version
    GET  /benchmarks     registered benchmark names
    GET  /cache/stats    pipeline counters + store statistics
    POST /cache/clear    drop the in-memory cache (``{"disk": true}`` also
                         clears the on-disk store)
    POST /synthesize     {"spec": <name or .g text>, "level": 5, ...}
    POST /verify         {"spec": ..., "mapped": bool, ...}
    POST /compare        {"spec": ..., "level": ..., "max_markings": ...}
    POST /export         {"spec": ..., "format": "verilog", ...}

``/synthesize`` responds with the lossless ``Report.to_json`` document plus
a ``resolution`` summary — how many stages were computed, served from
memory, or served from the store — which is what the CI smoke test asserts
on (a repeated request must resolve without computation).

Requests are serialized through one lock: correctness first (the pipeline's
memo dict is not concurrency-safe), and the workload is cache-dominated —
the durable store, not request parallelism, is the scaling story of this
PR.  Use :class:`repro.api.client.Client` to talk to the server from
Python.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.api.backends import compare
from repro.api.events import fanout
from repro.api.pipeline import Pipeline
from repro.api.spec import Spec, SpecError
from repro.api.store import get_store
from repro.gates.exporters import EXPORT_FORMATS, export_netlist
from repro.gates.ir import NetlistError
from repro.petri.reachability import StateSpaceLimitExceeded
from repro.statebased.synthesis import StateBasedSynthesisError
from repro.synthesis.engine import SynthesisError, SynthesisOptions

#: request errors mapped to HTTP 400 (bad input, not server failure).
#: KeyError/TypeError are deliberately absent — those indicate server bugs
#: and must surface as 500.  Bare ValueError stays: the input-validation
#: paths of the stack (library resolution, export formats, option parsing)
#: raise it for bad user input, the same contract the CLI maps to exit 2.
_CLIENT_ERRORS = (
    SpecError,
    SynthesisError,
    StateBasedSynthesisError,
    NetlistError,
    StateSpaceLimitExceeded,
    ValueError,
)


def _spec_of(body: dict):
    source = body.get("spec")
    if not source:
        raise ValueError("request body must include a non-empty 'spec'")
    return Spec.load(source)


class SynthesisService:
    """The request-facing facade over one shared store-backed pipeline.

    ``max_cached_artifacts`` bounds the pipeline's in-memory cache: once
    more artifacts than that are held, the cache is evicted wholesale after
    the request (the store, when attached, makes the eviction cheap — the
    next request reloads from disk instead of recomputing).  This keeps a
    long-lived daemon fed with a stream of distinct specs from growing
    without bound.
    """

    def __init__(
        self,
        store=None,
        pipeline: Optional[Pipeline] = None,
        max_cached_artifacts: int = 1024,
    ):
        if pipeline is None:
            pipeline = Pipeline(store=store)
        self.pipeline = pipeline
        self.max_cached_artifacts = max_cached_artifacts
        self.lock = threading.Lock()
        self.started = time.time()
        self.requests = 0
        self.evictions = 0
        self._events: list = []
        self._in_request = False
        # compose with (not replace) any callback the caller's pipeline carries
        pipeline.on_event = fanout(pipeline.on_event, self._collect)

    def _collect(self, event) -> None:
        # only record events raised by the handler running under the lock;
        # a shared pipeline driven directly from outside a request must not
        # grow (or pollute) the next request's resolution telemetry
        if self._in_request and event.kind == "stage":
            self._events.append(event)

    def _options(self, body: dict) -> SynthesisOptions:
        try:
            level = int(body.get("level", 5))
        except (TypeError, ValueError) as error:
            raise ValueError(f"'level' must be an integer 1..5: {error}") from error
        return SynthesisOptions(
            level=level,
            assume_csc=bool(body.get("assume_csc", False)),
        )

    def _maybe_evict(self) -> None:
        cached = sum(self.pipeline.cache_info().values())
        if cached > self.max_cached_artifacts:
            self.pipeline.evict_cache()
            self.evictions += 1

    def _resolution(self) -> dict:
        counts = {"computed": 0, "memory": 0, "store": 0}
        stages = []
        for event in self._events:
            counts[event.status] = counts.get(event.status, 0) + 1
            stages.append({"stage": event.stage, "status": event.status})
        return {**counts, "stages": stages}

    # ------------------------------------------------------------------ #
    # Request handlers (called under the lock)
    # ------------------------------------------------------------------ #

    def synthesize(self, body: dict) -> dict:
        spec = _spec_of(body)
        report = self.pipeline.run(
            spec,
            self._options(body),
            backend=body.get("backend", "structural"),
            map_technology=bool(body.get("map", False)),
            verify=bool(body.get("verify", False)),
            verify_mapped=bool(body.get("verify_mapped", False)),
            library=body.get("library"),
            max_markings=body.get("max_markings"),
        )
        return {"report": report.to_json(), "resolution": self._resolution()}

    def verify(self, body: dict) -> dict:
        spec = _spec_of(body)
        options = self._options(body)
        backend = body.get("backend", "structural")
        max_markings = body.get("max_markings")
        verification = self.pipeline.verify(
            spec, options, backend=backend, max_markings=max_markings
        )
        result = {"verify": verification.to_json()}
        if body.get("mapped", False):
            mapped = self.pipeline.verify_mapped(
                spec,
                options,
                backend=backend,
                library=body.get("library"),
                max_markings=max_markings,
            )
            result["verify_mapped"] = mapped.to_json()
        result["resolution"] = self._resolution()
        return result

    def compare(self, body: dict) -> dict:
        spec = _spec_of(body)
        report = compare(
            spec,
            self._options(body),
            pipeline=self.pipeline,
            max_markings=body.get("max_markings"),
        )
        return {"comparison": report.to_dict(), "resolution": self._resolution()}

    def export(self, body: dict) -> dict:
        spec = _spec_of(body)
        fmt = body.get("format", "verilog")
        if fmt not in EXPORT_FORMATS:
            raise ValueError(
                f"unknown export format {fmt!r} (available: {', '.join(EXPORT_FORMATS)})"
            )
        mapping = self.pipeline.map(
            spec,
            self._options(body),
            backend=body.get("backend", "structural"),
            library=body.get("library"),
            max_markings=body.get("max_markings"),
        )
        return {
            "format": fmt,
            "text": export_netlist(mapping.netlist, fmt),
            "gates": mapping.gate_count,
            "total_area": mapping.total_area,
            "resolution": self._resolution(),
        }

    def cache_stats(self, body: Optional[dict] = None) -> dict:
        stats = {
            "stage_calls": dict(self.pipeline.stage_calls),
            "store_hits": dict(self.pipeline.store_hits),
            "store_misses": dict(self.pipeline.store_misses),
            "memory_entries": self.pipeline.cache_info(),
            "evictions": self.evictions,
            "requests": self.requests,
            "uptime_seconds": time.time() - self.started,
        }
        if self.pipeline.store is not None:
            stats["store"] = self.pipeline.store.stats()
        return stats

    def cache_clear(self, body: Optional[dict] = None) -> dict:
        self.pipeline.clear_cache()
        removed = 0
        if (body or {}).get("disk") and self.pipeline.store is not None:
            removed = self.pipeline.store.clear()
        return {"cleared": True, "disk_entries_removed": removed}

    def health(self, body: Optional[dict] = None) -> dict:
        from repro.api.store import CODE_VERSION

        return {
            "status": "ok",
            "uptime_seconds": time.time() - self.started,
            "requests": self.requests,
            "code_version": CODE_VERSION,
            "store": str(self.pipeline.store.root) if self.pipeline.store else None,
        }

    def benchmarks(self, body: Optional[dict] = None) -> dict:
        from repro.benchmarks.registry import list_benchmarks

        return {"benchmarks": list_benchmarks()}

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #

    GET_ROUTES = {
        "/health": "health",
        "/benchmarks": "benchmarks",
        "/cache/stats": "cache_stats",
    }
    POST_ROUTES = {
        "/synthesize": "synthesize",
        "/verify": "verify",
        "/compare": "compare",
        "/export": "export",
        "/cache/clear": "cache_clear",
        "/cache/stats": "cache_stats",
    }
    #: endpoints that never touch the pipeline's memo state — answered
    #: without the lock so liveness probes survive a long-running synthesis
    LOCK_FREE = {"health", "benchmarks"}

    def dispatch(self, method: str, path: str, body: Optional[dict]):
        routes = self.GET_ROUTES if method == "GET" else self.POST_ROUTES
        name = routes.get(path)
        if name is None:
            return None
        if name in self.LOCK_FREE:
            self.requests += 1
            return getattr(self, name)(body)
        with self.lock:
            self.requests += 1
            self._events = []
            self._in_request = True
            try:
                return getattr(self, name)(body)
            finally:
                self._in_request = False
                self._maybe_evict()


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP plumbing around :class:`SynthesisService`."""

    server_version = "repro-serve/1"
    #: set by :func:`create_server`
    service: SynthesisService

    # quiet by default; ``create_server(verbose=True)`` restores logging
    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _handle(self, method: str) -> None:
        body: Optional[dict] = None
        if method == "POST":
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b"{}"
            try:
                body = json.loads(raw.decode("utf-8") or "{}")
            except json.JSONDecodeError as error:
                self._send(400, {"error": f"malformed JSON body: {error}"})
                return
            if not isinstance(body, dict):
                self._send(400, {"error": "request body must be a JSON object"})
                return
        try:
            result = self.service.dispatch(method, self.path, body)
        except _CLIENT_ERRORS as error:
            self._send(400, {"error": str(error)})
            return
        except Exception as error:  # noqa: BLE001 — the daemon must not die
            self._send(500, {"error": f"{type(error).__name__}: {error}"})
            return
        if result is None:
            self._send(404, {"error": f"unknown endpoint {method} {self.path}"})
            return
        self._send(200, result)

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        self._handle("POST")


def create_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    store=None,
    pipeline: Optional[Pipeline] = None,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """Build a ready-to-serve (but not yet serving) HTTP server.

    ``port=0`` binds an ephemeral port; read the actual one from
    ``server.server_address[1]``.  The in-process tests and the CI smoke
    job drive the returned server from a background thread.
    """
    service = SynthesisService(store=store, pipeline=pipeline)
    handler = type("_BoundHandler", (_Handler,), {"service": service})
    server = ThreadingHTTPServer((host, port), handler)
    server.verbose = verbose
    server.service = service  # type: ignore[attr-defined]
    return server


def run_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    store=None,
    verbose: bool = False,
) -> int:
    """Bind, announce, and serve until interrupted (the CLI's serve loop)."""
    store = get_store(store)  # accept a path like every other entry point
    server = create_server(host=host, port=port, store=store, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    print(
        f"repro serve: listening on http://{bound_host}:{bound_port} "
        f"(store: {store.root if store is not None else 'disabled'})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    """``python -m repro.api.server`` entry point.

    Delegates to the CLI's ``serve`` subcommand so there is exactly one
    argument parser for the daemon's flags.
    """
    import sys

    from repro.api.cli import main as cli_main

    return cli_main(["serve", *(argv if argv is not None else sys.argv[1:])])


if __name__ == "__main__":
    raise SystemExit(main())
