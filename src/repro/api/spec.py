"""The specification front door of the unified API.

A :class:`Spec` is the single way every entry point of :mod:`repro.api`
receives its input.  It accepts all three specification sources used across
the repository — a ``.g``/ASTG file on disk, a benchmark-registry name, or an
in-memory :class:`~repro.stg.stg.STG` — and normalizes them to one canonical
``.g`` text plus a stable content hash.  The hash keys every stage cache of
:class:`repro.api.pipeline.Pipeline`, so two specs describing the same STG
(regardless of how they were loaded or formatted) share cached artifacts.

All malformed input surfaces as the typed :class:`SpecError` (a subclass of
``ValueError``), wrapping the lower-level parser errors.
"""

from __future__ import annotations

import hashlib
import os
from typing import Optional, Union

from repro.stg.parser import GFormatError, parse_g
from repro.stg.stg import STG
from repro.stg.writer import write_g


class SpecError(ValueError):
    """Raised when a specification cannot be loaded or parsed."""


#: Anything :func:`Spec.load` knows how to turn into a :class:`Spec`.
SpecLike = Union["Spec", STG, str, os.PathLike]


class Spec:
    """A synthesis specification with a canonical form and a content hash.

    Construct with one of the classmethods — :meth:`from_file`,
    :meth:`from_benchmark`, :meth:`from_stg`, :meth:`from_text` — or let
    :meth:`load` dispatch on the source type.  The canonical text is the
    ``.g`` serialization of the parsed STG (independent of the input
    formatting), and :attr:`content_hash` is its SHA-256 digest.
    """

    __slots__ = ("name", "origin", "text", "_stg", "_hash")

    def __init__(self, name: str, text: str, origin: str, stg: Optional[STG] = None):
        self.name = name
        #: canonical ``.g`` serialization of the specification
        self.text = text
        #: where the spec came from: ``file`` / ``benchmark`` / ``stg`` / ``text``
        self.origin = origin
        self._stg = stg
        self._hash: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_text(cls, text: str, name: Optional[str] = None) -> "Spec":
        """Parse an inline ``.g`` description."""
        try:
            stg = parse_g(text, name=name)
        except GFormatError as error:
            raise SpecError(f"malformed .g specification: {error}") from error
        return cls(stg.name, write_g(stg), "text", stg)

    @classmethod
    def from_file(cls, path: Union[str, os.PathLike]) -> "Spec":
        """Load a ``.g``/ASTG file from disk."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            raise SpecError(f"cannot read specification file {path!r}: {error}") from error
        name = os.path.splitext(os.path.basename(str(path)))[0]
        try:
            stg = parse_g(text, name=name)
        except GFormatError as error:
            raise SpecError(f"malformed .g file {path!r}: {error}") from error
        return cls(stg.name, write_g(stg), "file", stg)

    @classmethod
    def from_benchmark(cls, name: str) -> "Spec":
        """Build a benchmark from the registry by name."""
        from repro.benchmarks.registry import get_benchmark

        try:
            stg = get_benchmark(name)
        except KeyError as error:
            raise SpecError(str(error.args[0])) from error
        return cls(name, write_g(stg), "benchmark", stg)

    @classmethod
    def from_stg(cls, stg: STG, name: Optional[str] = None) -> "Spec":
        """Wrap an in-memory STG."""
        if not isinstance(stg, STG):
            raise SpecError(f"expected an STG instance, got {type(stg).__name__}")
        return cls(name or stg.name, write_g(stg), "stg", stg)

    @classmethod
    def load(cls, source: SpecLike) -> "Spec":
        """Dispatch on the source type: Spec, STG, path, registry name, or text."""
        if isinstance(source, Spec):
            return source
        if isinstance(source, STG):
            return cls.from_stg(source)
        if isinstance(source, os.PathLike):
            return cls.from_file(source)
        if isinstance(source, str):
            # inline .g text always spans multiple lines; everything else on
            # one line is a path or a registry name (existence checked first,
            # so a path like "my.graph.g" is never misread as inline text)
            if "\n" in source:
                return cls.from_text(source)
            if os.path.exists(source) or source.endswith(".g"):
                return cls.from_file(source)
            from repro.benchmarks.registry import list_benchmarks

            if source in list_benchmarks():
                return cls.from_benchmark(source)
            raise SpecError(
                f"{source!r} is neither an existing .g file nor a registered "
                f"benchmark (see `python -m repro list`)"
            )
        raise SpecError(f"cannot build a Spec from {type(source).__name__}")

    # ------------------------------------------------------------------ #
    # Canonical identity
    # ------------------------------------------------------------------ #

    @property
    def content_hash(self) -> str:
        """SHA-256 of the canonical ``.g`` text (stable across load paths)."""
        if self._hash is None:
            self._hash = hashlib.sha256(self.text.encode("utf-8")).hexdigest()
        return self._hash

    @property
    def stg(self) -> STG:
        """The parsed STG (built lazily from the canonical text)."""
        if self._stg is None:
            self._stg = parse_g(self.text, name=self.name)
        return self._stg

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Spec):
            return NotImplemented
        return self.content_hash == other.content_hash

    def __hash__(self) -> int:
        return hash(self.content_hash)

    def __repr__(self) -> str:
        return (
            f"Spec({self.name!r}, origin={self.origin!r}, "
            f"hash={self.content_hash[:12]})"
        )

    # The parsed STG is a derived in-memory object: drop it when pickling
    # (process-pool workers re-parse from the canonical text).
    def __getstate__(self):
        return (self.name, self.text, self.origin)

    def __setstate__(self, state):
        self.name, self.text, self.origin = state
        self._stg = None
        self._hash = None
