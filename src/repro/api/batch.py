"""Batch execution: many specs through one pipeline, optionally in parallel.

``synthesize_many`` is the fan-out entry point of the scaling roadmap.  It
is now a thin wrapper over :class:`repro.api.scheduler.Scheduler`: every
input is normalized through :class:`~repro.api.spec.Spec`, sequential runs
share one artifact cache (duplicate specs are synthesized once), parallel
runs fan out over a process pool, and — new since PR 5 — a durable
:class:`~repro.api.store.ArtifactStore` can back the whole batch so workers
and later processes share persisted stage artifacts, while an ``on_event``
callback receives structured progress records instead of ad-hoc prints.

Workers receive pickled specs (the canonical ``.g`` text — the STG is
re-parsed in the worker) and return full
:class:`~repro.api.artifacts.Report` objects, whose circuits re-pack their
cube masks on unpickling in the parent's variable-interner order.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Optional

from repro.api.artifacts import Report
from repro.api.spec import SpecLike
from repro.synthesis.engine import SynthesisOptions


def synthesize_many(
    specs: Iterable[SpecLike],
    options: Optional[SynthesisOptions] = None,
    backend: str = "structural",
    map_technology: bool = False,
    verify: bool = False,
    max_markings: Optional[int] = None,
    jobs: Optional[int] = None,
    pipeline=None,
    store=None,
    on_event=None,
) -> list[Report]:
    """Synthesize a batch of specs; returns one :class:`Report` per spec.

    Parameters
    ----------
    jobs:
        ``None``/``0``/``1`` runs sequentially through a shared pipeline
        (artifact cache shared across the batch).  ``jobs > 1`` fans out
        over a process pool with that many workers; ``jobs < 0`` uses the
        machine's CPU count.
    pipeline:
        Optional pipeline to reuse (sequential mode only), e.g. to share
        cached analysis artifacts with earlier calls.
    store:
        Optional durable artifact store (instance or path) shared by the
        batch — including every pool worker.
    on_event:
        Optional callback receiving :class:`repro.api.events.Event` progress
        records.
    """
    from repro.api.scheduler import Scheduler, make_jobs

    scheduler = Scheduler(jobs=jobs, store=store, on_event=on_event, pipeline=pipeline)
    return scheduler.run(
        make_jobs(
            specs,
            options,
            backend=backend,
            map_technology=map_technology,
            verify=verify,
            max_markings=max_markings,
        )
    )
