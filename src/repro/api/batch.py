"""Batch execution: many specs through one pipeline, optionally in parallel.

``synthesize_many`` is the fan-out entry point the scaling roadmap builds
on: it normalizes every input through :class:`~repro.api.spec.Spec`, shares
one artifact cache across the batch when running sequentially (duplicate
specs are synthesized once), and can fan out over a process pool.  Workers
receive pickled specs (the canonical ``.g`` text — the STG is re-parsed in
the worker) and return full :class:`~repro.api.artifacts.Report` objects,
whose circuits re-pack their cube masks on unpickling in the parent's
variable-interner order.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Optional, Union

from repro.api.artifacts import Report
from repro.api.spec import Spec, SpecLike
from repro.synthesis.engine import SynthesisOptions


def _run_one(
    spec: Spec,
    options: SynthesisOptions,
    backend: str,
    map_technology: bool,
    verify: bool,
    max_markings: Optional[int],
) -> Report:
    """Process-pool worker: one spec through a fresh pipeline.

    The report is stripped of the analysis-side in-memory handles before it
    crosses the process boundary — only the plain-data fields and the
    circuit travel back; the worker's approximation/regions objects would
    otherwise dominate the pickle payload for nothing.
    """
    from repro.api.pipeline import Pipeline

    report = Pipeline().run(
        spec,
        options,
        backend=backend,
        map_technology=map_technology,
        verify=verify,
        max_markings=max_markings,
    )
    report.synthesis.refinement = None
    report.synthesis.regions = None
    if report.analysis is not None:
        report.analysis.approximation = None
        report.analysis.concurrency = None
        report.analysis.sm_cover = None
    if report.refinement is not None:
        report.refinement.approximation = None
        report.refinement.analysis = None
    if report.mapping is not None:
        report.mapping.mapped = None
    return report


def synthesize_many(
    specs: Iterable[SpecLike],
    options: Optional[SynthesisOptions] = None,
    backend: str = "structural",
    map_technology: bool = False,
    verify: bool = False,
    max_markings: Optional[int] = None,
    jobs: Optional[int] = None,
    pipeline=None,
) -> list[Report]:
    """Synthesize a batch of specs; returns one :class:`Report` per spec.

    Parameters
    ----------
    jobs:
        ``None``/``0``/``1`` runs sequentially through a shared pipeline
        (artifact cache shared across the batch).  ``jobs > 1`` fans out
        over a process pool with that many workers; ``jobs < 0`` uses the
        machine's CPU count.
    pipeline:
        Optional pipeline to reuse (sequential mode only), e.g. to share
        cached analysis artifacts with earlier calls.
    """
    from repro.api.pipeline import Pipeline

    options = options or SynthesisOptions()
    loaded: Sequence[Spec] = [Spec.load(spec) for spec in specs]

    if jobs is not None and jobs < 0:
        import os

        jobs = os.cpu_count() or 1

    if not jobs or jobs == 1 or len(loaded) <= 1:
        shared = pipeline if pipeline is not None else Pipeline()
        return [
            shared.run(
                spec,
                options,
                backend=backend,
                map_technology=map_technology,
                verify=verify,
                max_markings=max_markings,
            )
            for spec in loaded
        ]

    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [
            pool.submit(
                _run_one, spec, options, backend, map_technology, verify, max_markings
            )
            for spec in loaded
        ]
        return [future.result() for future in futures]
