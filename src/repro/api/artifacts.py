"""Typed, JSON-serializable artifacts produced by the pipeline stages.

Every stage of :class:`repro.api.pipeline.Pipeline` returns one of these
dataclasses.  Each artifact separates two layers:

* plain-data fields (numbers, strings, lists, dicts) that ``to_dict()``
  serializes for reports, the CLI ``--json`` output, and perf records;
* in-memory *handles* (the approximation object, the circuit, the mapping)
  that downstream stages consume but that are never serialized.

:class:`Report` is the typed replacement of the ad-hoc ``statistics`` dicts
previously returned by the synthesis engines: it aggregates the stage
artifacts of one spec-to-circuit run and is picklable, so process-pool batch
execution (:func:`repro.api.batch.synthesize_many`) can ship it back whole —
including the circuit, whose covers re-pack themselves on unpickling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.structural.approximation import SignalRegionApproximation
from repro.synthesis.netlist import Circuit


def _clean(value):
    """Best-effort conversion to JSON-serializable data."""
    if isinstance(value, dict):
        return {str(k): _clean(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_clean(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


@dataclass
class AnalysisArtifact:
    """Stage ``analyze``: concurrency, consistency, approximation, SM-cover."""

    spec_name: str
    spec_hash: str
    places: int
    transitions: int
    signals: list[str]
    non_input_signals: list[str]
    consistent: bool
    sm_components: int
    sm_cover_size: int
    seconds: float
    #: in-memory handles (not serialized)
    approximation: Optional[SignalRegionApproximation] = field(
        default=None, repr=False, compare=False
    )
    concurrency: object = field(default=None, repr=False, compare=False)
    sm_cover: object = field(default=None, repr=False, compare=False)

    def to_dict(self) -> dict:
        return _clean(
            {
                "stage": "analyze",
                "spec": self.spec_name,
                "spec_hash": self.spec_hash,
                "places": self.places,
                "transitions": self.transitions,
                "signals": self.signals,
                "non_input_signals": self.non_input_signals,
                "consistent": self.consistent,
                "sm_components": self.sm_components,
                "sm_cover_size": self.sm_cover_size,
                "seconds": round(self.seconds, 6),
            }
        )


@dataclass
class RefinementArtifact:
    """Stage ``refine``: cover-function refinement plus the structural CSC check."""

    spec_name: str
    spec_hash: str
    conflicts_before: int
    conflicts_after: int
    csc_certified: bool
    unresolved_places: list[str]
    cubes: int
    seconds: float
    approximation: Optional[SignalRegionApproximation] = field(
        default=None, repr=False, compare=False
    )
    #: the analysis artifact this refinement was computed from
    analysis: Optional[AnalysisArtifact] = field(default=None, repr=False, compare=False)

    def to_dict(self) -> dict:
        return _clean(
            {
                "stage": "refine",
                "spec": self.spec_name,
                "spec_hash": self.spec_hash,
                "conflicts_before": self.conflicts_before,
                "conflicts_after": self.conflicts_after,
                "csc_certified": self.csc_certified,
                "unresolved_places": self.unresolved_places,
                "cubes": self.cubes,
                "seconds": round(self.seconds, 6),
            }
        )


@dataclass
class SynthesisArtifact:
    """Stage ``synthesize``: the circuit of one backend at one level."""

    spec_name: str
    spec_hash: str
    backend: str
    level: int
    literals: int
    transistors: int
    latches: int
    architectures: dict[str, str]
    seconds: float
    markings: Optional[int] = None
    circuit: Optional[Circuit] = field(default=None, repr=False, compare=False)
    #: the refinement artifact the structural backend synthesized from
    refinement: Optional[RefinementArtifact] = field(
        default=None, repr=False, compare=False
    )
    #: the exact signal regions the state-based backend computed (reused by
    #: the differential mode to avoid a second reachability enumeration)
    regions: object = field(default=None, repr=False, compare=False)

    def to_dict(self) -> dict:
        data = {
            "stage": "synthesize",
            "spec": self.spec_name,
            "spec_hash": self.spec_hash,
            "backend": self.backend,
            "level": self.level,
            "literals": self.literals,
            "transistors": self.transistors,
            "latches": self.latches,
            "architectures": self.architectures,
            "seconds": round(self.seconds, 6),
        }
        if self.markings is not None:
            data["markings"] = self.markings
        return _clean(data)


@dataclass
class MappingArtifact:
    """Stage ``map``: technology mapping onto the gate library.

    Besides the area report, the artifact carries the constructed
    gate-level netlist (:class:`repro.gates.ir.GateNetlist`) — the input of
    the exporters and of the ``verify_mapped`` stage.
    """

    spec_name: str
    spec_hash: str
    total_area: int
    per_signal_area: dict[str, int]
    cells_used: dict[str, list[str]]
    seconds: float
    library: str = ""
    gate_count: int = 0
    net_count: int = 0
    latch_count: int = 0
    mapped: object = field(default=None, repr=False, compare=False)
    #: the typed gate-graph IR (repro.gates.ir.GateNetlist)
    netlist: object = field(default=None, repr=False, compare=False)

    def to_dict(self) -> dict:
        return _clean(
            {
                "stage": "map",
                "spec": self.spec_name,
                "spec_hash": self.spec_hash,
                "library": self.library,
                "total_area": self.total_area,
                "gates": self.gate_count,
                "nets": self.net_count,
                "latches": self.latch_count,
                "per_signal_area": self.per_signal_area,
                "cells_used": self.cells_used,
                "seconds": round(self.seconds, 6),
            }
        )


@dataclass
class VerificationArtifact:
    """Stage ``verify``: state-based speed-independence verification."""

    spec_name: str
    spec_hash: str
    speed_independent: bool
    checked_markings: int
    functional_errors: list[str]
    hazard_errors: list[str]
    seconds: float

    def __bool__(self) -> bool:
        return self.speed_independent

    def to_dict(self) -> dict:
        return _clean(
            {
                "stage": "verify",
                "spec": self.spec_name,
                "spec_hash": self.spec_hash,
                "speed_independent": self.speed_independent,
                "checked_markings": self.checked_markings,
                "functional_errors": self.functional_errors,
                "hazard_errors": self.hazard_errors,
                "seconds": round(self.seconds, 6),
            }
        )


@dataclass
class MappedVerificationArtifact:
    """Stage ``verify_mapped``: gate-level differential verification.

    The settled outputs of the mapped netlist's event simulation are
    compared with :meth:`Circuit.next_values` over every distinct reachable
    state code of the specification.
    """

    spec_name: str
    spec_hash: str
    equivalent: bool
    checked_codes: int
    checked_markings: int
    gate_count: int
    library: str
    mismatches: list[str]
    seconds: float

    def __bool__(self) -> bool:
        return self.equivalent

    def to_dict(self) -> dict:
        return _clean(
            {
                "stage": "verify_mapped",
                "spec": self.spec_name,
                "spec_hash": self.spec_hash,
                "equivalent": self.equivalent,
                "checked_codes": self.checked_codes,
                "checked_markings": self.checked_markings,
                "gates": self.gate_count,
                "library": self.library,
                "mismatches": self.mismatches,
                "seconds": round(self.seconds, 6),
            }
        )


@dataclass
class Report:
    """The typed result of one spec-to-circuit run.

    Replaces the ad-hoc ``statistics`` dicts: every stage that ran
    contributes its artifact, and the circuit rides along as a picklable
    handle.  ``to_dict()`` yields a pure-JSON summary.
    """

    spec_name: str
    spec_hash: str
    backend: str
    level: int
    synthesis: SynthesisArtifact
    analysis: Optional[AnalysisArtifact] = None
    refinement: Optional[RefinementArtifact] = None
    mapping: Optional[MappingArtifact] = None
    verification: Optional[VerificationArtifact] = None
    mapped_verification: Optional[MappedVerificationArtifact] = None

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #

    @property
    def circuit(self) -> Optional[Circuit]:
        return self.synthesis.circuit

    @property
    def literals(self) -> int:
        return self.synthesis.literals

    @property
    def netlist(self):
        """The mapped gate-level netlist, when the ``map`` stage ran."""
        if self.mapping is None:
            return None
        return self.mapping.netlist

    @property
    def total_seconds(self) -> float:
        return sum(
            stage.seconds
            for stage in (
                self.analysis,
                self.refinement,
                self.synthesis,
                self.mapping,
                self.verification,
                self.mapped_verification,
            )
            if stage is not None
        )

    @property
    def speed_independent(self) -> Optional[bool]:
        if self.verification is None:
            return None
        return self.verification.speed_independent

    def to_dict(self) -> dict:
        data = {
            "spec": self.spec_name,
            "spec_hash": self.spec_hash,
            "backend": self.backend,
            "level": self.level,
            "total_seconds": round(self.total_seconds, 6),
            "synthesize": self.synthesis.to_dict(),
        }
        for key, stage in (
            ("analyze", self.analysis),
            ("refine", self.refinement),
            ("map", self.mapping),
            ("verify", self.verification),
            ("verify_mapped", self.mapped_verification),
        ):
            if stage is not None:
                data[key] = stage.to_dict()
        return data

    def describe(self) -> str:
        """Human readable one-run summary (circuit netlist plus stage costs)."""
        lines = []
        if self.circuit is not None:
            lines.append(self.circuit.describe())
        lines.append(
            f"backend: {self.backend}  level: M{self.level}  "
            f"total: {self.total_seconds:.3f}s"
        )
        if self.mapping is not None:
            lines.append(
                f"mapped area: {self.mapping.total_area} "
                f"({self.mapping.gate_count} gates, library "
                f"{self.mapping.library or 'generic-cmos'})"
            )
        if self.mapped_verification is not None:
            lines.append(
                f"mapped netlist equivalent: {self.mapped_verification.equivalent} "
                f"(checked {self.mapped_verification.checked_codes} state codes)"
            )
        if self.verification is not None:
            lines.append(
                f"speed independent: {self.verification.speed_independent} "
                f"(checked {self.verification.checked_markings} markings)"
            )
        return "\n".join(lines)
