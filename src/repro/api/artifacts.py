"""Typed, JSON-serializable artifacts produced by the pipeline stages.

Every stage of :class:`repro.api.pipeline.Pipeline` returns one of these
dataclasses.  Each artifact separates two layers:

* plain-data fields (numbers, strings, lists, dicts) that ``to_dict()``
  summarizes for reports, the CLI text output, and perf records;
* in-memory *handles* (the approximation object, the circuit, the mapping)
  that downstream stages consume.

Since PR 5 every artifact also carries a *lossless, versioned* serial form:
``to_json()`` emits every plain field verbatim (no rounding) plus the
serializable payload of the handles a later stage may need — refined cover
functions, the concurrency relation's bitset rows, the SM-cover, the
circuit, the gate netlist — and ``from_json()`` reconstructs the artifact in
any process (cubes re-intern their packed masks exactly like
``Cube.__reduce__`` does for pickling).  This is what lets the on-disk
:class:`repro.api.store.ArtifactStore` back the pipeline cache across
processes: a stage artifact loaded from the store behaves identically to a
freshly computed one.

Heavy handles are *rehydrated lazily*: a deserialized analysis/refinement
artifact keeps its serialized payload in ``frozen_handles`` and only
rebuilds the approximation object when a downstream cache miss actually
needs it (:meth:`AnalysisArtifact.ensure_handles`).

:class:`Report` aggregates the stage artifacts of one spec-to-circuit run;
it is picklable (process-pool batch execution ships it back whole) and
JSON round-trippable (``Report.to_json``/``Report.from_json``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

from repro.structural.approximation import SignalRegionApproximation
from repro.synthesis.netlist import Circuit

#: Schema version of the artifact JSON documents.  Bump when a field changes
#: meaning; the on-disk store additionally gates on its own code version.
ARTIFACT_VERSION = 1


def _clean(value):
    """Best-effort conversion to JSON-serializable data."""
    if isinstance(value, dict):
        return {str(k): _clean(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_clean(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _envelope(stage: str, fields: dict) -> dict:
    """The common document envelope of one serialized artifact."""
    data = {"stage": stage, "version": ARTIFACT_VERSION}
    data.update(fields)
    return data


def _check_envelope(data: dict, stage: str) -> dict:
    """Validate stage tag and schema version; raises :class:`ValueError`."""
    if data.get("stage") != stage:
        raise ValueError(
            f"expected a {stage!r} artifact document, got {data.get('stage')!r}"
        )
    if data.get("version") != ARTIFACT_VERSION:
        raise ValueError(
            f"unsupported {stage} artifact version {data.get('version')!r} "
            f"(this code reads version {ARTIFACT_VERSION})"
        )
    return data


@dataclass
class AnalysisArtifact:
    """Stage ``analyze``: concurrency, consistency, approximation, SM-cover."""

    spec_name: str
    spec_hash: str
    places: int
    transitions: int
    signals: list[str]
    non_input_signals: list[str]
    consistent: bool
    sm_components: int
    sm_cover_size: int
    seconds: float
    #: in-memory handles (rebuilt lazily after deserialization)
    approximation: Optional[SignalRegionApproximation] = field(
        default=None, repr=False, compare=False
    )
    concurrency: object = field(default=None, repr=False, compare=False)
    sm_cover: object = field(default=None, repr=False, compare=False)
    #: serialized handle payload kept by ``from_json`` for lazy rehydration
    frozen_handles: Optional[dict] = field(default=None, repr=False, compare=False)

    def to_dict(self) -> dict:
        return _clean(
            {
                "stage": "analyze",
                "spec": self.spec_name,
                "spec_hash": self.spec_hash,
                "places": self.places,
                "transitions": self.transitions,
                "signals": self.signals,
                "non_input_signals": self.non_input_signals,
                "consistent": self.consistent,
                "sm_components": self.sm_components,
                "sm_cover_size": self.sm_cover_size,
                "seconds": round(self.seconds, 6),
            }
        )

    # ------------------------------------------------------------------ #
    # Lossless serialization
    # ------------------------------------------------------------------ #

    def to_json(self) -> dict:
        """Lossless, versioned JSON document of the analysis stage.

        Besides the plain fields, the document carries the handle payloads a
        downstream ``refine`` miss needs: the concurrency relation's bitset
        rows, the structural initial values, and the SM-cover.  The raw
        (single-cube) cover functions are *not* shipped — they are a
        deterministic function of those three and are rebuilt on demand.
        """
        handles = self.frozen_handles
        if handles is None and self.approximation is not None:
            handles = {
                "concurrency": self.concurrency.to_json(),
                "initial_values": dict(self.approximation.initial_values),
                "sm_cover": [component.to_json() for component in self.sm_cover],
            }
        return _envelope(
            "analyze",
            {
                "spec": self.spec_name,
                "spec_hash": self.spec_hash,
                "places": self.places,
                "transitions": self.transitions,
                "signals": list(self.signals),
                "non_input_signals": list(self.non_input_signals),
                "consistent": self.consistent,
                "sm_components": self.sm_components,
                "sm_cover_size": self.sm_cover_size,
                "seconds": self.seconds,
                "handles": handles,
            },
        )

    @classmethod
    def from_json(cls, data: dict) -> "AnalysisArtifact":
        """Rebuild the artifact; handles stay frozen until ``ensure_handles``."""
        _check_envelope(data, "analyze")
        return cls(
            spec_name=data["spec"],
            spec_hash=data["spec_hash"],
            places=int(data["places"]),
            transitions=int(data["transitions"]),
            signals=list(data["signals"]),
            non_input_signals=list(data["non_input_signals"]),
            consistent=bool(data["consistent"]),
            sm_components=int(data["sm_components"]),
            sm_cover_size=int(data["sm_cover_size"]),
            seconds=float(data["seconds"]),
            frozen_handles=data.get("handles"),
        )

    def ensure_handles(self, stg) -> "AnalysisArtifact":
        """Rehydrate ``approximation``/``concurrency``/``sm_cover`` from ``stg``.

        A no-op when the handles are live.  Deserialized artifacts rebuild
        them from the frozen payload (cheap: the concurrency fixed point and
        the Farkas SM-enumeration are *loaded*, not recomputed); artifacts
        stripped by the batch layer fall back to a full recomputation.
        """
        if self.approximation is not None:
            return self
        from repro.petri.smcover import StateMachineComponent, compute_sm_components, compute_sm_cover
        from repro.structural.approximation import approximate_signal_regions
        from repro.structural.concurrency import (
            ConcurrencyRelation,
            compute_concurrency_relation,
        )

        frozen = self.frozen_handles
        if frozen is not None:
            concurrency = ConcurrencyRelation.from_json(stg, frozen["concurrency"])
            initial_values = {
                signal: int(value)
                for signal, value in frozen["initial_values"].items()
            }
            sm_cover = [
                StateMachineComponent.from_json(component)
                for component in frozen["sm_cover"]
            ]
        else:
            concurrency = compute_concurrency_relation(stg)
            initial_values = None
            sm_cover = compute_sm_cover(stg.net, compute_sm_components(stg.net))
        self.approximation = approximate_signal_regions(
            stg, concurrency, initial_values=initial_values
        )
        self.concurrency = concurrency
        self.sm_cover = sm_cover
        return self


@dataclass
class RefinementArtifact:
    """Stage ``refine``: cover-function refinement plus the structural CSC check."""

    spec_name: str
    spec_hash: str
    conflicts_before: int
    conflicts_after: int
    csc_certified: bool
    unresolved_places: list[str]
    cubes: int
    seconds: float
    approximation: Optional[SignalRegionApproximation] = field(
        default=None, repr=False, compare=False
    )
    #: the analysis artifact this refinement was computed from
    analysis: Optional[AnalysisArtifact] = field(default=None, repr=False, compare=False)
    #: serialized handle payload kept by ``from_json`` for lazy rehydration
    frozen_handles: Optional[dict] = field(default=None, repr=False, compare=False)

    def to_dict(self) -> dict:
        return _clean(
            {
                "stage": "refine",
                "spec": self.spec_name,
                "spec_hash": self.spec_hash,
                "conflicts_before": self.conflicts_before,
                "conflicts_after": self.conflicts_after,
                "csc_certified": self.csc_certified,
                "unresolved_places": self.unresolved_places,
                "cubes": self.cubes,
                "seconds": round(self.seconds, 6),
            }
        )

    # ------------------------------------------------------------------ #
    # Lossless serialization
    # ------------------------------------------------------------------ #

    def to_json(self) -> dict:
        """Lossless JSON document: plain fields plus the *refined* cover
        functions (the product of the Section VII algorithm — the one handle
        that cannot be recomputed cheaply).

        The linked analysis artifact is deliberately **not** nested: it has
        its own document (and its own store entry), and every reader that
        needs it — the pipeline's ``refine`` stage, ``Report.from_json`` —
        re-links it; ``ensure_handles`` can also rebuild without it.
        """
        handles = self.frozen_handles
        if handles is None and self.approximation is not None:
            handles = {
                "cover_functions": {
                    place: cover.to_json()
                    for place, cover in self.approximation.cover_functions.items()
                },
            }
        return _envelope(
            "refine",
            {
                "spec": self.spec_name,
                "spec_hash": self.spec_hash,
                "conflicts_before": self.conflicts_before,
                "conflicts_after": self.conflicts_after,
                "csc_certified": self.csc_certified,
                "unresolved_places": list(self.unresolved_places),
                "cubes": self.cubes,
                "seconds": self.seconds,
                "handles": handles,
            },
        )

    @classmethod
    def from_json(cls, data: dict) -> "RefinementArtifact":
        """Rebuild the artifact; handles stay frozen until ``ensure_handles``."""
        _check_envelope(data, "refine")
        return cls(
            spec_name=data["spec"],
            spec_hash=data["spec_hash"],
            conflicts_before=int(data["conflicts_before"]),
            conflicts_after=int(data["conflicts_after"]),
            csc_certified=bool(data["csc_certified"]),
            unresolved_places=list(data["unresolved_places"]),
            cubes=int(data["cubes"]),
            seconds=float(data["seconds"]),
            frozen_handles=data.get("handles"),
        )

    def ensure_handles(self, stg) -> "RefinementArtifact":
        """Rehydrate the refined approximation object from ``stg``.

        Mirrors the original ``refine`` computation: the analysis
        approximation (itself rehydrated on demand) is cloned with the
        deserialized refined cover functions, so a store-loaded artifact
        feeds the structural backend the same object a fresh run would.
        Without a linked analysis, the approximation scaffolding is rebuilt
        directly from the STG (deterministic) around the frozen refined
        covers.
        """
        if self.approximation is not None:
            return self
        from repro.boolean.cover import Cover

        frozen = self.frozen_handles
        cover_functions = None
        if frozen is not None:
            cover_functions = {
                place: Cover.from_json(cover)
                for place, cover in frozen["cover_functions"].items()
            }
        analysis = self.analysis
        if analysis is not None:
            analysis.ensure_handles(stg)
            if cover_functions is None:
                from repro.structural.refinement import refine_cover_functions

                refinement = refine_cover_functions(
                    stg,
                    analysis.approximation.cover_functions,
                    analysis.sm_cover,
                    analysis.concurrency,
                )
                cover_functions = refinement.cover_functions
            self.approximation = dataclasses.replace(
                analysis.approximation, cover_functions=cover_functions
            )
            return self
        if cover_functions is None:
            raise ValueError(
                "cannot rehydrate a refinement artifact without either its "
                "analysis or its frozen cover functions"
            )
        from repro.structural.approximation import approximate_signal_regions

        self.approximation = approximate_signal_regions(
            stg, cover_functions=cover_functions
        )
        return self


@dataclass
class SynthesisArtifact:
    """Stage ``synthesize``: the circuit of one backend at one level."""

    spec_name: str
    spec_hash: str
    backend: str
    level: int
    literals: int
    transistors: int
    latches: int
    architectures: dict[str, str]
    seconds: float
    markings: Optional[int] = None
    #: backend-specific extras (e.g. the SAT backend's per-signal minima,
    #: candidate counts and solver statistics); must stay JSON-serializable
    details: Optional[dict] = None
    circuit: Optional[Circuit] = field(default=None, repr=False, compare=False)
    #: the refinement artifact the structural backend synthesized from
    refinement: Optional[RefinementArtifact] = field(
        default=None, repr=False, compare=False
    )
    #: the exact signal regions the state-based backend computed (reused by
    #: the differential mode to avoid a second reachability enumeration)
    regions: object = field(default=None, repr=False, compare=False)

    def to_dict(self) -> dict:
        data = {
            "stage": "synthesize",
            "spec": self.spec_name,
            "spec_hash": self.spec_hash,
            "backend": self.backend,
            "level": self.level,
            "literals": self.literals,
            "transistors": self.transistors,
            "latches": self.latches,
            "architectures": self.architectures,
            "seconds": round(self.seconds, 6),
        }
        if self.markings is not None:
            data["markings"] = self.markings
        if self.details is not None:
            data["details"] = self.details
        return _clean(data)

    # ------------------------------------------------------------------ #
    # Lossless serialization
    # ------------------------------------------------------------------ #

    def to_json(self) -> dict:
        """Lossless JSON document including the full circuit.

        The ``refinement``/``regions`` handles are deliberately dropped: a
        store-backed pipeline re-resolves the refinement through its own
        ``refine`` stage (a store hit), and the exact regions only serve as
        an in-process shortcut for the differential mode.
        """
        return _envelope(
            "synthesize",
            {
                "spec": self.spec_name,
                "spec_hash": self.spec_hash,
                "backend": self.backend,
                "level": self.level,
                "literals": self.literals,
                "transistors": self.transistors,
                "latches": self.latches,
                "architectures": dict(self.architectures),
                "seconds": self.seconds,
                "markings": self.markings,
                "details": self.details,
                "circuit": self.circuit.to_json() if self.circuit is not None else None,
            },
        )

    @classmethod
    def from_json(cls, data: dict) -> "SynthesisArtifact":
        _check_envelope(data, "synthesize")
        circuit = data.get("circuit")
        return cls(
            spec_name=data["spec"],
            spec_hash=data["spec_hash"],
            backend=data["backend"],
            level=int(data["level"]),
            literals=int(data["literals"]),
            transistors=int(data["transistors"]),
            latches=int(data["latches"]),
            architectures=dict(data["architectures"]),
            seconds=float(data["seconds"]),
            markings=None if data.get("markings") is None else int(data["markings"]),
            details=data.get("details"),
            circuit=Circuit.from_json(circuit) if circuit else None,
        )


@dataclass
class MappingArtifact:
    """Stage ``map``: technology mapping onto the gate library.

    Besides the area report, the artifact carries the constructed
    gate-level netlist (:class:`repro.gates.ir.GateNetlist`) — the input of
    the exporters and of the ``verify_mapped`` stage.
    """

    spec_name: str
    spec_hash: str
    total_area: int
    per_signal_area: dict[str, int]
    cells_used: dict[str, list[str]]
    seconds: float
    library: str = ""
    gate_count: int = 0
    net_count: int = 0
    latch_count: int = 0
    mapped: object = field(default=None, repr=False, compare=False)
    #: the typed gate-graph IR (repro.gates.ir.GateNetlist)
    netlist: object = field(default=None, repr=False, compare=False)

    def to_dict(self) -> dict:
        return _clean(
            {
                "stage": "map",
                "spec": self.spec_name,
                "spec_hash": self.spec_hash,
                "library": self.library,
                "total_area": self.total_area,
                "gates": self.gate_count,
                "nets": self.net_count,
                "latches": self.latch_count,
                "per_signal_area": self.per_signal_area,
                "cells_used": self.cells_used,
                "seconds": round(self.seconds, 6),
            }
        )

    # ------------------------------------------------------------------ #
    # Lossless serialization
    # ------------------------------------------------------------------ #

    def to_json(self) -> dict:
        """Lossless JSON document including the gate-level netlist (the
        exporters' and ``verify_mapped``'s input); the transient
        ``mapped`` handle is derived data and is not shipped."""
        return _envelope(
            "map",
            {
                "spec": self.spec_name,
                "spec_hash": self.spec_hash,
                "total_area": self.total_area,
                "per_signal_area": dict(self.per_signal_area),
                "cells_used": {s: list(c) for s, c in self.cells_used.items()},
                "seconds": self.seconds,
                "library": self.library,
                "gate_count": self.gate_count,
                "net_count": self.net_count,
                "latch_count": self.latch_count,
                "netlist": self.netlist.to_json() if self.netlist is not None else None,
            },
        )

    @classmethod
    def from_json(cls, data: dict) -> "MappingArtifact":
        from repro.gates.ir import GateNetlist

        _check_envelope(data, "map")
        netlist = data.get("netlist")
        return cls(
            spec_name=data["spec"],
            spec_hash=data["spec_hash"],
            total_area=int(data["total_area"]),
            per_signal_area={k: int(v) for k, v in data["per_signal_area"].items()},
            cells_used={s: list(c) for s, c in data["cells_used"].items()},
            seconds=float(data["seconds"]),
            library=data.get("library", ""),
            gate_count=int(data.get("gate_count", 0)),
            net_count=int(data.get("net_count", 0)),
            latch_count=int(data.get("latch_count", 0)),
            netlist=GateNetlist.from_json(netlist) if netlist else None,
        )


@dataclass
class VerificationArtifact:
    """Stage ``verify``: state-based speed-independence verification."""

    spec_name: str
    spec_hash: str
    speed_independent: bool
    checked_markings: int
    functional_errors: list[str]
    hazard_errors: list[str]
    seconds: float

    def __bool__(self) -> bool:
        return self.speed_independent

    def to_dict(self) -> dict:
        return _clean(
            {
                "stage": "verify",
                "spec": self.spec_name,
                "spec_hash": self.spec_hash,
                "speed_independent": self.speed_independent,
                "checked_markings": self.checked_markings,
                "functional_errors": self.functional_errors,
                "hazard_errors": self.hazard_errors,
                "seconds": round(self.seconds, 6),
            }
        )

    def to_json(self) -> dict:
        """Lossless JSON document (the artifact is pure plain data)."""
        return _envelope(
            "verify",
            {
                "spec": self.spec_name,
                "spec_hash": self.spec_hash,
                "speed_independent": self.speed_independent,
                "checked_markings": self.checked_markings,
                "functional_errors": [str(e) for e in self.functional_errors],
                "hazard_errors": [str(e) for e in self.hazard_errors],
                "seconds": self.seconds,
            },
        )

    @classmethod
    def from_json(cls, data: dict) -> "VerificationArtifact":
        _check_envelope(data, "verify")
        return cls(
            spec_name=data["spec"],
            spec_hash=data["spec_hash"],
            speed_independent=bool(data["speed_independent"]),
            checked_markings=int(data["checked_markings"]),
            functional_errors=list(data["functional_errors"]),
            hazard_errors=list(data["hazard_errors"]),
            seconds=float(data["seconds"]),
        )


@dataclass
class MappedVerificationArtifact:
    """Stage ``verify_mapped``: gate-level differential verification.

    The settled outputs of the mapped netlist's event simulation are
    compared with :meth:`Circuit.next_values` over every distinct reachable
    state code of the specification.
    """

    spec_name: str
    spec_hash: str
    equivalent: bool
    checked_codes: int
    checked_markings: int
    gate_count: int
    library: str
    mismatches: list[str]
    seconds: float

    def __bool__(self) -> bool:
        return self.equivalent

    def to_dict(self) -> dict:
        return _clean(
            {
                "stage": "verify_mapped",
                "spec": self.spec_name,
                "spec_hash": self.spec_hash,
                "equivalent": self.equivalent,
                "checked_codes": self.checked_codes,
                "checked_markings": self.checked_markings,
                "gates": self.gate_count,
                "library": self.library,
                "mismatches": self.mismatches,
                "seconds": round(self.seconds, 6),
            }
        )

    def to_json(self) -> dict:
        """Lossless JSON document (the artifact is pure plain data)."""
        return _envelope(
            "verify_mapped",
            {
                "spec": self.spec_name,
                "spec_hash": self.spec_hash,
                "equivalent": self.equivalent,
                "checked_codes": self.checked_codes,
                "checked_markings": self.checked_markings,
                "gate_count": self.gate_count,
                "library": self.library,
                "mismatches": [str(m) for m in self.mismatches],
                "seconds": self.seconds,
            },
        )

    @classmethod
    def from_json(cls, data: dict) -> "MappedVerificationArtifact":
        _check_envelope(data, "verify_mapped")
        return cls(
            spec_name=data["spec"],
            spec_hash=data["spec_hash"],
            equivalent=bool(data["equivalent"]),
            checked_codes=int(data["checked_codes"]),
            checked_markings=int(data["checked_markings"]),
            gate_count=int(data["gate_count"]),
            library=data["library"],
            mismatches=list(data["mismatches"]),
            seconds=float(data["seconds"]),
        )


@dataclass
class Report:
    """The typed result of one spec-to-circuit run.

    Replaces the ad-hoc ``statistics`` dicts: every stage that ran
    contributes its artifact, and the circuit rides along as a picklable
    handle.  ``to_dict()`` yields a pure-JSON summary.
    """

    spec_name: str
    spec_hash: str
    backend: str
    level: int
    synthesis: SynthesisArtifact
    analysis: Optional[AnalysisArtifact] = None
    refinement: Optional[RefinementArtifact] = None
    mapping: Optional[MappingArtifact] = None
    verification: Optional[VerificationArtifact] = None
    mapped_verification: Optional[MappedVerificationArtifact] = None

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #

    @property
    def circuit(self) -> Optional[Circuit]:
        return self.synthesis.circuit

    @property
    def literals(self) -> int:
        return self.synthesis.literals

    @property
    def netlist(self):
        """The mapped gate-level netlist, when the ``map`` stage ran."""
        if self.mapping is None:
            return None
        return self.mapping.netlist

    @property
    def total_seconds(self) -> float:
        return sum(
            stage.seconds
            for stage in (
                self.analysis,
                self.refinement,
                self.synthesis,
                self.mapping,
                self.verification,
                self.mapped_verification,
            )
            if stage is not None
        )

    @property
    def speed_independent(self) -> Optional[bool]:
        if self.verification is None:
            return None
        return self.verification.speed_independent

    def to_dict(self) -> dict:
        data = {
            "spec": self.spec_name,
            "spec_hash": self.spec_hash,
            "backend": self.backend,
            "level": self.level,
            "total_seconds": round(self.total_seconds, 6),
            "synthesize": self.synthesis.to_dict(),
        }
        for key, stage in (
            ("analyze", self.analysis),
            ("refine", self.refinement),
            ("map", self.mapping),
            ("verify", self.verification),
            ("verify_mapped", self.mapped_verification),
        ):
            if stage is not None:
                data[key] = stage.to_dict()
        return data

    # ------------------------------------------------------------------ #
    # Lossless serialization
    # ------------------------------------------------------------------ #

    def to_json(self) -> dict:
        """Versioned, lossless JSON document of the full run.

        Unlike :meth:`to_dict` (a rounded summary), this document round-trips
        through :meth:`from_json` identically — it is what the CLI ``--json``
        mode emits and what the HTTP server ships to :class:`repro.api.client.Client`.
        """
        data = {
            "format": "repro-report",
            "version": ARTIFACT_VERSION,
            "spec": self.spec_name,
            "spec_hash": self.spec_hash,
            "backend": self.backend,
            "level": self.level,
            "total_seconds": self.total_seconds,
            "synthesize": self.synthesis.to_json(),
        }
        for key, stage in (
            ("analyze", self.analysis),
            ("refine", self.refinement),
            ("map", self.mapping),
            ("verify", self.verification),
            ("verify_mapped", self.mapped_verification),
        ):
            data[key] = stage.to_json() if stage is not None else None
        return data

    @classmethod
    def from_json(cls, data: dict) -> "Report":
        """Rebuild a report from :meth:`to_json` output."""
        if data.get("format") != "repro-report":
            raise ValueError(
                f"not a report document (format={data.get('format')!r})"
            )
        if data.get("version") != ARTIFACT_VERSION:
            raise ValueError(
                f"unsupported report version {data.get('version')!r} "
                f"(this code reads version {ARTIFACT_VERSION})"
            )

        def load(key, artifact_cls):
            stage = data.get(key)
            return artifact_cls.from_json(stage) if stage else None

        analysis = load("analyze", AnalysisArtifact)
        refinement = load("refine", RefinementArtifact)
        if refinement is not None and refinement.analysis is None:
            # the refine document does not nest the analysis; re-link it
            refinement.analysis = analysis
        return cls(
            spec_name=data["spec"],
            spec_hash=data["spec_hash"],
            backend=data["backend"],
            level=int(data["level"]),
            synthesis=SynthesisArtifact.from_json(data["synthesize"]),
            analysis=analysis,
            refinement=refinement,
            mapping=load("map", MappingArtifact),
            verification=load("verify", VerificationArtifact),
            mapped_verification=load("verify_mapped", MappedVerificationArtifact),
        )

    def describe(self) -> str:
        """Human readable one-run summary (circuit netlist plus stage costs)."""
        lines = []
        if self.circuit is not None:
            lines.append(self.circuit.describe())
        lines.append(
            f"backend: {self.backend}  level: M{self.level}  "
            f"total: {self.total_seconds:.3f}s"
        )
        if self.mapping is not None:
            lines.append(
                f"mapped area: {self.mapping.total_area} "
                f"({self.mapping.gate_count} gates, library "
                f"{self.mapping.library or 'generic-cmos'})"
            )
        if self.mapped_verification is not None:
            lines.append(
                f"mapped netlist equivalent: {self.mapped_verification.equivalent} "
                f"(checked {self.mapped_verification.checked_codes} state codes)"
            )
        if self.verification is not None:
            lines.append(
                f"speed independent: {self.verification.speed_independent} "
                f"(checked {self.verification.checked_markings} markings)"
            )
        return "\n".join(lines)
