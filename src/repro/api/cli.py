"""The ``python -m repro`` command line interface.

Drives the unified pipeline without writing Python::

    python -m repro list
    python -m repro synthesize handshake_seq --level 5 --map --verify
    python -m repro synthesize path/to/spec.g --backend statebased --json
    python -m repro verify muller_pipeline_4 --mapped
    python -m repro export sequencer --format verilog
    python -m repro export sequencer --format blif --lib two-input-only -o out.blif
    python -m repro compare sequencer --level 3
    python -m repro compare sequencer --backends statebased sat
    python -m repro synthesize converter_2to4 --backend sat --json
    python -m repro gap --spec fig6 --spec glatch_3
    python -m repro bench fig13 --json
    python -m repro cache stats
    python -m repro cache prewarm 'glatch_*' --jobs 4
    python -m repro serve --port 8765

``synthesize``/``verify``/``export``/``compare`` accept any spec source the
API accepts: a registry benchmark name or a ``.g`` file path.  ``export``
renders the mapped gate-level netlist in one of the four interchange
formats (``verilog``/``blif``/``json``/``eqn``); ``--lib`` selects a
built-in gate library or a library JSON file.

The CLI is durable by default: stage artifacts are persisted to the
content-addressed store (``~/.cache/repro``, or ``$REPRO_STORE``, or
``--store PATH``) and reused across invocations; ``--no-store`` opts out.
``repro cache`` inspects (``stats``), empties (``clear``) or fills
(``prewarm <glob>``) the store, and ``repro serve`` exposes the pipeline as
a long-lived HTTP daemon (see :mod:`repro.api.server`).

``--json`` on ``synthesize`` emits the *lossless, versioned* report document
(``Report.to_json``) — it reloads through ``Report.from_json`` identically.
Exit status is 0 on success, 1 when a check fails (verification/comparison
mismatch), and 2 on bad input (unknown spec, malformed ``.g``,
unsynthesizable STG, unknown library).
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import os
import sys
from typing import Optional

from repro.api.backends import BACKEND_NAMES, compare
from repro.api.events import progress_printer
from repro.api.pipeline import Pipeline
from repro.api.spec import Spec, SpecError
from repro.api.store import get_store
from repro.gates.exporters import EXPORT_FORMATS, export_netlist
from repro.gates.ir import NetlistError
from repro.petri.reachability import StateSpaceLimitExceeded
from repro.sat.encode import SatBudgetExceeded
from repro.statebased.synthesis import StateBasedSynthesisError
from repro.synthesis.engine import SynthesisError, SynthesisOptions

#: bench targets exposed by ``python -m repro bench``
BENCH_TARGETS = ("table5", "table6", "table7", "table8", "fig13")


def _add_store_location(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=None,
        help="artifact store directory (default $REPRO_STORE or ~/.cache/repro)",
    )


def _add_store_options(parser: argparse.ArgumentParser) -> None:
    _add_store_location(parser)
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="run purely in memory (no artifacts persisted or reused)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print one progress line per resolved stage to stderr",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "deterministic fault injection, e.g. "
            "'seed=7;store.read=0.5;stage.error@synthesize=1x1' "
            "(default $REPRO_FAULTS; testing/chaos runs only)"
        ),
    )


def _add_spec_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("spec", help="benchmark name or path to a .g file")
    parser.add_argument(
        "--level",
        type=int,
        default=5,
        choices=range(1, 6),
        help="minimization level M1..M5 (default 5)",
    )
    parser.add_argument(
        "--assume-csc",
        action="store_true",
        help="accept specs whose CSC property is not certified structurally",
    )
    parser.add_argument(
        "--max-markings",
        type=int,
        default=None,
        help="bound on state-based enumeration (raises past it)",
    )
    parser.add_argument("--json", action="store_true", help="emit JSON instead of text")
    _add_store_options(parser)


def _pipeline_from_args(args) -> Pipeline:
    """A store-backed pipeline honouring ``--store``/``--no-store``/``--progress``."""
    if getattr(args, "no_store", False):
        store = None
    else:
        store = get_store(getattr(args, "store", None), default=True)
    on_event = progress_printer() if getattr(args, "progress", False) else None
    return Pipeline(store=store, on_event=on_event, faults=getattr(args, "faults", None))


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Speed-independent circuit synthesis (Pastor et al.)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    synth = sub.add_parser("synthesize", help="synthesize a circuit from a spec")
    _add_spec_options(synth)
    synth.add_argument(
        "--backend",
        default="structural",
        choices=BACKEND_NAMES,
        help="synthesis backend (default structural)",
    )
    synth.add_argument("--map", action="store_true", help="run technology mapping")
    synth.add_argument("--verify", action="store_true", help="verify speed independence")
    synth.add_argument(
        "--verify-mapped",
        action="store_true",
        help="differentially verify the mapped gate-level netlist",
    )
    synth.add_argument(
        "--lib",
        default=None,
        help="gate library: built-in name or JSON file (default generic-cmos)",
    )
    synth.add_argument(
        "-o", "--output", default=None, help="write the report JSON to a file"
    )

    verify = sub.add_parser("verify", help="synthesize and verify a spec")
    _add_spec_options(verify)
    verify.add_argument(
        "--backend", default="structural", choices=BACKEND_NAMES
    )
    verify.add_argument(
        "--mapped",
        action="store_true",
        help="also differentially verify the mapped gate-level netlist",
    )
    verify.add_argument(
        "--lib",
        default=None,
        help="gate library for --mapped (built-in name or JSON file)",
    )

    export = sub.add_parser(
        "export", help="map a spec and export the gate-level netlist"
    )
    _add_spec_options(export)
    export.add_argument(
        "--backend", default="structural", choices=BACKEND_NAMES
    )
    export.add_argument(
        "--format",
        dest="fmt",
        default="verilog",
        choices=EXPORT_FORMATS,
        help="output format (default verilog)",
    )
    export.add_argument(
        "--lib",
        default=None,
        help="gate library: built-in name or JSON file (default generic-cmos)",
    )
    export.add_argument(
        "-o", "--output", default=None, help="write the netlist to a file"
    )

    comp = sub.add_parser(
        "compare", help="differential mode: run two backends and cross-check"
    )
    _add_spec_options(comp)
    comp.add_argument(
        "--backends",
        nargs=2,
        default=("structural", "statebased"),
        choices=BACKEND_NAMES,
        metavar=("FIRST", "SECOND"),
        help="the backend pair to cross-check (default: structural statebased)",
    )

    bench = sub.add_parser("bench", help="regenerate a table/figure of the paper")
    bench.add_argument("target", choices=BENCH_TARGETS)
    bench.add_argument("--json", action="store_true", help="emit JSON rows")

    gap = sub.add_parser(
        "gap", help="optimality-gap table: structural vs exact SAT minima"
    )
    gap.add_argument(
        "--spec",
        action="append",
        dest="specs",
        default=None,
        metavar="NAME",
        help="registry spec to include (repeatable; default: the gap registry)",
    )
    gap.add_argument("--level", type=int, default=5, help="structural level")
    gap.add_argument("--jobs", type=int, default=None, help="parallel workers")
    gap.add_argument(
        "--timeout", type=float, default=None, help="per-spec deadline in seconds"
    )
    gap.add_argument("--max-markings", type=int, default=None)
    gap.add_argument("--json", action="store_true", help="emit JSON rows")
    _add_store_location(gap)

    cache = sub.add_parser("cache", help="inspect or manage the artifact store")
    cache.add_argument(
        "action", choices=("stats", "clear", "prewarm", "sweep"), help="what to do"
    )
    cache.add_argument(
        "pattern",
        nargs="?",
        default=None,
        help=(
            "spec-name glob: prewarm these registry benchmarks / clear only "
            "matching entries (e.g. 'glatch_*'; default: everything)"
        ),
    )
    cache.add_argument(
        "--level", type=int, default=5, choices=range(1, 6), help="prewarm level"
    )
    cache.add_argument(
        "--assume-csc",
        action="store_true",
        help="prewarm with assume_csc (matches later runs passing --assume-csc)",
    )
    cache.add_argument(
        "--backend", default="structural", choices=BACKEND_NAMES
    )
    cache.add_argument(
        "--map", action="store_true", help="also prewarm the technology-mapping stage"
    )
    cache.add_argument(
        "--verify", action="store_true", help="also prewarm the verification stage"
    )
    cache.add_argument(
        "--jobs", type=int, default=None, help="prewarm through a process pool"
    )
    cache.add_argument("--json", action="store_true", help="emit JSON instead of text")
    cache.add_argument(
        "--progress",
        action="store_true",
        help="print one progress line per prewarmed benchmark to stderr",
    )
    cache.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help="stats only: query a running server's /cache/stats instead of "
        "opening the store locally (includes its coalescing counters)",
    )
    _add_store_location(cache)

    serve = sub.add_parser(
        "serve", help="serve the pipeline as a long-lived HTTP daemon"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8765, help="0 binds an ephemeral port"
    )
    serve.add_argument("--verbose", action="store_true", help="log every request")
    serve.add_argument(
        "--no-store",
        action="store_true",
        help="serve from memory only (no disk store)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=8,
        help="locked requests in flight before shedding with 503 (default 8)",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        help="seconds an admitted request may wait for the service lock "
        "before a 504 (default: wait indefinitely)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="prefork a supervised SO_REUSEPORT fleet of N worker processes "
        "(0, the default, serves single-process in this process)",
    )
    serve.add_argument(
        "--max-requests",
        type=int,
        default=None,
        help="recycle a fleet worker after serving this many requests "
        "(default: never; fleet mode only)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds a draining worker may spend finishing in-flight "
        "requests before it is killed (fleet mode only, default 10)",
    )
    serve.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=10.0,
        help="seconds without a worker heartbeat before the supervisor "
        "declares it hung and respawns it (fleet mode only, default 10)",
    )
    serve.add_argument(
        "--hot-cache",
        type=int,
        default=256,
        help="per-worker in-memory LRU of hot store artifacts "
        "(fleet mode only, 0 disables; default 256)",
    )
    serve.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="deterministic fault injection for fleet chaos runs, e.g. "
        "'seed=7;worker.kill@synthesize=0.05' (default $REPRO_FAULTS)",
    )
    serve.add_argument(
        "--obs",
        nargs="?",
        const="on",
        default=None,
        metavar="SPEC",
        help="observability: bare --obs turns tracing+metrics on, or pass a "
        "grammar like 'dir=/tmp/run;trace=off' (default $REPRO_OBS); "
        "enables GET /metrics and per-process trace sinks",
    )
    serve.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help="fleet run directory for heartbeats, trace sinks and metric "
        "snapshots (default: a private tempdir; set one to use "
        "'repro top --run-dir' and 'repro trace')",
    )
    _add_store_location(serve)

    trace = sub.add_parser(
        "trace", help="inspect stitched distributed traces from a run dir"
    )
    trace.add_argument(
        "action", choices=("show", "ls"), help="show one trace / list recent traces"
    )
    trace.add_argument(
        "trace_id", nargs="?", default=None, help="trace id (show only)"
    )
    trace.add_argument(
        "--dir",
        required=True,
        metavar="DIR",
        help="run directory holding the trace-*.jsonl sinks",
    )
    trace.add_argument("--json", action="store_true", help="emit span records as JSON")

    top = sub.add_parser(
        "top", help="live terminal dashboard over /metrics or a fleet run dir"
    )
    top.add_argument(
        "--url", default=None, help="server base URL to scrape (e.g. http://127.0.0.1:8765)"
    )
    top.add_argument(
        "--run-dir", default=None, help="fleet run directory to merge snapshots from"
    )
    top.add_argument(
        "--interval", type=float, default=1.0, help="seconds between samples"
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="sample N times then exit (default: run until interrupted)",
    )
    top.add_argument(
        "--once", action="store_true", help="shorthand for --iterations 1"
    )
    top.add_argument(
        "--json", action="store_true", help="emit one JSON document per sample"
    )

    fuzz = sub.add_parser(
        "fuzz", help="generate corpus STGs and run the differential fuzzing farm"
    )
    fuzz_sub = fuzz.add_subparsers(dest="fuzz_command", required=True)

    fuzz_run = fuzz_sub.add_parser(
        "run", help="run a seeded differential campaign over generated specs"
    )
    fuzz_run.add_argument("--count", type=int, default=100, help="specs to generate")
    fuzz_run.add_argument("--seed", type=int, default=0, help="campaign seed")
    fuzz_run.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="scheduler fan-out (0/1 sequential, n>1 pool, -1 cpu count)",
    )
    fuzz_run.add_argument(
        "--time-budget",
        type=float,
        default=None,
        help="seconds; stops generating new specs past the budget",
    )
    fuzz_run.add_argument(
        "--max-markings",
        type=int,
        default=600,
        help="state-space bound per spec (exploding candidates are discarded)",
    )
    fuzz_run.add_argument(
        "--quarantine",
        default=None,
        help="directory for minimal counterexamples "
        "(default: $REPRO_CORPUS_QUARANTINE or corpus/quarantine)",
    )
    fuzz_run.add_argument(
        "--no-shrink",
        action="store_true",
        help="file failing specs as-is instead of delta-debugging them",
    )
    fuzz_run.add_argument(
        "--faults",
        default=None,
        help="fault spec (repro.api.faults grammar), e.g. 'seed=3;corpus.flip=0.5'",
    )
    fuzz_run.add_argument(
        "--progress", action="store_true", help="print per-spec progress events"
    )
    fuzz_run.add_argument("--json", action="store_true")

    fuzz_gen = fuzz_sub.add_parser(
        "gen", help="generate corpus specs without checking them"
    )
    fuzz_gen.add_argument("--count", type=int, default=10)
    fuzz_gen.add_argument("--seed", type=int, default=0)
    fuzz_gen.add_argument(
        "--max-markings", type=int, default=600, help="validity-filter bound"
    )
    fuzz_gen.add_argument(
        "-o", "--out", default=None, help="directory to write the .g files into"
    )
    fuzz_gen.add_argument("--json", action="store_true")

    fuzz_replay = fuzz_sub.add_parser(
        "replay", help="replay quarantined counterexamples against expectations"
    )
    fuzz_replay.add_argument(
        "--quarantine",
        default=None,
        help="directory to replay (default: $REPRO_CORPUS_QUARANTINE or corpus/quarantine)",
    )
    fuzz_replay.add_argument("--max-markings", type=int, default=None)
    fuzz_replay.add_argument("--json", action="store_true")

    list_parser = sub.add_parser("list", help="list registered benchmarks")
    list_parser.add_argument(
        "--json",
        action="store_true",
        help="emit name, signals, transitions, places and safety class as JSON",
    )

    return parser


def _emit(data: dict, as_json: bool, text: str) -> None:
    if as_json:
        print(json.dumps(data, indent=2))
    else:
        print(text)


def _cmd_synthesize(args) -> int:
    spec = Spec.load(args.spec)
    options = SynthesisOptions(level=args.level, assume_csc=args.assume_csc)
    report = _pipeline_from_args(args).run(
        spec,
        options,
        backend=args.backend,
        map_technology=args.map,
        verify=args.verify,
        verify_mapped=args.verify_mapped,
        library=args.lib,
        max_markings=args.max_markings,
    )
    # the versioned lossless document (reloads through Report.from_json);
    # only built when something consumes it — serializing the circuit,
    # bitset rows and netlist is wasted work in plain-text mode
    document = report.to_json() if (args.json or args.output) else None
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
    _emit(document, args.json, report.describe())
    if args.verify and not report.verification.speed_independent:
        return 1
    if args.verify_mapped and not report.mapped_verification.equivalent:
        return 1
    return 0


def _cmd_verify(args) -> int:
    spec = Spec.load(args.spec)
    options = SynthesisOptions(level=args.level, assume_csc=args.assume_csc)
    pipeline = _pipeline_from_args(args)
    verification = pipeline.verify(
        spec, options, backend=args.backend, max_markings=args.max_markings
    )
    text = (
        f"{spec.name}: speed independent: {verification.speed_independent} "
        f"(checked {verification.checked_markings} markings)"
    )
    if not verification.speed_independent:
        text += (
            f"\n  functional errors: {len(verification.functional_errors)}"
            f"\n  hazard errors: {len(verification.hazard_errors)}"
        )
    data = verification.to_json()
    ok = verification.speed_independent
    if args.mapped:
        mapped = pipeline.verify_mapped(
            spec,
            options,
            backend=args.backend,
            library=args.lib,
            max_markings=args.max_markings,
        )
        text += (
            f"\n{spec.name}: mapped netlist equivalent: {mapped.equivalent} "
            f"(checked {mapped.checked_codes} state codes, "
            f"{mapped.gate_count} gates)"
        )
        data = {"verify": data, "verify_mapped": mapped.to_json()}
        ok = ok and mapped.equivalent
    _emit(data, args.json, text)
    return 0 if ok else 1


def _cmd_export(args) -> int:
    spec = Spec.load(args.spec)
    options = SynthesisOptions(level=args.level, assume_csc=args.assume_csc)
    mapping = _pipeline_from_args(args).map(
        spec,
        options,
        backend=args.backend,
        library=args.lib,
        max_markings=args.max_markings,
    )
    text = export_netlist(mapping.netlist, args.fmt)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(
            f"{spec.name}: wrote {args.fmt} netlist "
            f"({mapping.gate_count} gates, area {mapping.total_area}) "
            f"to {args.output}"
        )
    else:
        print(text, end="")
    return 0


def _cmd_compare(args) -> int:
    spec = Spec.load(args.spec)
    options = SynthesisOptions(level=args.level, assume_csc=args.assume_csc)
    backends = tuple(args.backends)
    report = compare(
        spec,
        options,
        pipeline=_pipeline_from_args(args),
        max_markings=args.max_markings,
        backends=backends,
    )
    first, second = report.backends
    width = max(len(first), len(second), len("checked markings"))
    lines = [
        f"{spec.name}: next-state functions "
        + ("MATCH" if report.matching else "MISMATCH"),
        f"  {'checked markings':{width}} : {report.checked_markings}",
        f"  {first:{width}} : {report.structural.literals} literals, "
        f"{report.structural.total_seconds:.3f}s",
        f"  {second:{width}} : {report.statebased.literals} literals, "
        f"{report.statebased.total_seconds:.3f}s",
    ]
    if report.speedup is not None:
        lines.append(f"  {second}/{first} time ratio: {report.speedup:.2f}x")
    for mismatch in report.mismatches:
        lines.append(f"  mismatch: {mismatch}")
    _emit(report.to_dict(), args.json, "\n".join(lines))
    return 0 if report.matching else 1


def _cmd_gap(args) -> int:
    from repro.experiments.optimality_gap import gap_rows
    from repro.experiments.reporting import format_table

    store = get_store(args.store, default=True)
    rows = gap_rows(
        names=args.specs,
        level=args.level,
        store=store,
        jobs=args.jobs,
        timeout=args.timeout,
        max_markings=args.max_markings,
    )
    if args.json:
        print(json.dumps(rows, indent=2, default=str))
    else:
        print(
            format_table(
                rows, title="Optimality gap — structural vs exact SAT minima"
            )
        )
    body = rows[:-1]
    solved = [r for r in body if r["status"] == "ok"]
    unsound = [r for r in solved if not r["sound"] or not r["matching"]]
    if unsound:
        print(
            "gap violation (exact > heuristic or differential mismatch): "
            + ", ".join(r["spec"] for r in unsound),
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench(args) -> int:
    from repro.experiments.reporting import format_table

    if args.target == "fig13":
        from repro.experiments.fig13 import fig13_rows

        rows = fig13_rows()
        title = "Fig. 13 — average area per minimization level"
    elif args.target == "table5":
        from repro.experiments.table5 import table5_rows

        rows = table5_rows()
        title = "Table V — area comparison"
    elif args.target == "table6":
        from repro.experiments.table6 import table6_rows

        rows = table6_rows()
        title = "Table VI — CPU time on large-RG STGs"
    elif args.target == "table7":
        from repro.experiments.table7 import table7_rows

        rows = table7_rows()
        title = "Table VII — CPU time on the scalable examples"
    else:
        from repro.experiments.table8 import table8_rows

        rows = table8_rows()
        title = "Table VIII — markings / nodes / cubes"
    if args.json:
        print(json.dumps(rows, indent=2, default=str))
    else:
        print(format_table(rows, title=title))
    return 0


def _cmd_cache(args) -> int:
    store = get_store(args.store, default=True)

    if args.action == "stats":
        if args.pattern is not None:
            print("error: `cache stats` takes no pattern", file=sys.stderr)
            return 2
        flights = None
        if args.url is not None:
            # a running server's view: its pipeline counters, its store
            # handle's session numbers, and its single-flight telemetry
            from repro.api.client import Client

            remote = Client(args.url).cache_stats()
            stats = remote.get("store") or {}
            flights = remote.get("flights")
            if not stats:
                _emit(remote, args.json, f"{args.url}: no store attached")
                return 0
            if args.json:
                print(json.dumps(remote, indent=2))
                return 0
        else:
            stats = store.stats()
            if args.json:
                print(json.dumps(stats, indent=2))
                return 0
        session = stats.get("session", {})
        print(f"store: {stats['root']} (code version {stats['code_version']})")
        print(
            f"  entries: {stats['entries']} "
            f"({stats['stale_entries']} stale), {stats['bytes']} bytes"
        )
        for stage, count in stats["per_stage"].items():
            print(f"  {stage}: {count}")
        print(
            f"  session: {session.get('hits', 0)} hits "
            f"(+{session.get('lru_hits', 0)} hot-LRU), "
            f"{session.get('misses', 0)} misses, "
            f"{session.get('writes', 0)} writes"
        )
        print(
            f"  hot LRU: {session.get('lru_entries', 0)}/"
            f"{session.get('lru_size', 0)} entries"
        )
        if flights is not None:
            print(
                f"  flights: {flights.get('led', 0)} led, "
                f"{flights.get('followed', 0)} coalesced, "
                f"{flights.get('degraded', 0)} degraded "
                f"({stats.get('flight_locks', 0)} lock(s) on disk)"
            )
        elif stats.get("flight_locks"):
            print(f"  flights: {stats['flight_locks']} lock(s) on disk")
        if (
            stats["quarantined_entries"]
            or stats["tmp_files"]
            or stats["tmp_swept"]
            or session.get("quarantined")
        ):
            print(
                f"  quarantined: {stats['quarantined_entries']} "
                f"({session.get('quarantined', 0)} this session), "
                f"orphaned tmp: {stats['tmp_files']} "
                f"(swept {stats['tmp_swept']})"
            )
        return 0

    if args.action == "sweep":
        if args.pattern is not None:
            print("error: `cache sweep` takes no pattern", file=sys.stderr)
            return 2
        swept = store.sweep()
        _emit(
            swept,
            args.json,
            f"swept {swept['tmp_removed']} orphaned temp file(s), "
            f"quarantined {swept['stale_quarantined']} damaged/stale entr(y/ies)",
        )
        return 0

    if args.action == "clear":
        # a pattern scopes the removal to matching spec names; without one
        # the whole store (including stale temp files) is emptied
        removed = store.clear(spec_pattern=args.pattern)
        scope = f" for {args.pattern!r}" if args.pattern else ""
        _emit(
            {"cleared": removed, "pattern": args.pattern},
            args.json,
            f"removed {removed} store entries{scope}",
        )
        return 0

    # prewarm: run the selected stages of every matching registry benchmark
    # through the store so later runs (CLI, experiments, server) start warm.
    from repro.api.scheduler import Scheduler, make_jobs
    from repro.benchmarks.registry import list_benchmarks

    pattern = args.pattern or "*"
    names = [name for name in list_benchmarks() if fnmatch.fnmatch(name, pattern)]
    if not names:
        print(f"error: no registry benchmark matches {pattern!r}", file=sys.stderr)
        return 2
    on_event = progress_printer() if args.progress else None
    scheduler = Scheduler(jobs=args.jobs, store=store, on_event=on_event)
    # assume_csc is part of the stage keys: prewarm with the same flag the
    # later runs will use (default off, matching a plain `repro synthesize`)
    options = SynthesisOptions(level=args.level, assume_csc=args.assume_csc)
    jobs = make_jobs(
        names,
        options,
        backend=args.backend,
        map_technology=args.map,
        verify=args.verify,
    )
    failures: list[str] = []
    succeeded = 0
    for result in scheduler.iter_results(jobs):
        if result.ok:
            succeeded += 1
        else:
            failures.append(f"{result.job.spec.name}: {result.error}")
    stats = store.stats()
    summary = {
        "prewarmed": succeeded,
        "failed": len(failures),
        "failures": failures,
        "store": {
            "root": stats["root"],
            "entries": stats["entries"],
            "bytes": stats["bytes"],
            "session": stats["session"],
        },
    }
    text = (
        f"prewarmed {succeeded}/{len(jobs)} benchmarks into {stats['root']} "
        f"({stats['entries']} entries, {stats['bytes']} bytes)"
    )
    if failures:
        text += "\n" + "\n".join(f"  failed: {line}" for line in failures)
    _emit(summary, args.json, text)
    return 0 if not failures else 1


def _cmd_serve(args) -> int:
    from repro.api.server import run_server

    store = None if args.no_store else get_store(args.store, default=True)
    if args.workers > 0:
        import os as _os

        from repro.api.fleet import FleetConfig, run_fleet

        faults = args.faults if args.faults is not None else _os.environ.get("REPRO_FAULTS")
        return run_fleet(
            FleetConfig(
                host=args.host,
                port=args.port,
                workers=args.workers,
                store=str(store.root) if store is not None else None,
                max_requests=args.max_requests,
                drain_timeout=args.drain_timeout,
                heartbeat_timeout=args.heartbeat_timeout,
                max_queue=args.max_queue,
                request_timeout=args.request_timeout,
                faults=faults,
                verbose=args.verbose,
                lru_size=args.hot_cache,
                run_dir=args.run_dir,
                obs=args.obs,
            )
        )
    obs = args.obs
    if obs is not None and args.run_dir is not None:
        from repro.obs import Obs, get_obs

        resolved = get_obs(obs) or Obs()
        if resolved.dir is None:
            resolved = resolved.reconfigure(dir=args.run_dir, service="server")
        obs = resolved
    return run_server(
        host=args.host,
        port=args.port,
        store=store,
        verbose=args.verbose,
        max_queue=args.max_queue,
        request_timeout=args.request_timeout,
        obs=obs,
    )


def _cmd_trace(args) -> int:
    from repro.obs.trace import list_traces, load_trace, render_trace

    if args.action == "ls":
        summaries = list_traces(args.dir)
        if args.json:
            print(json.dumps(summaries, indent=2))
            return 0
        if not summaries:
            print(f"no traces under {args.dir}")
            return 0
        for summary in summaries:
            print(
                f"{summary['trace']}  {summary['spans']:3d} span(s)  "
                f"{len(summary['services'])} service(s)  "
                f"{summary['root'] or '?'}"
            )
        return 0
    if not args.trace_id:
        print("error: `trace show` needs a trace id (try `trace ls`)", file=sys.stderr)
        return 2
    records = load_trace(args.dir, args.trace_id)
    if not records:
        print(f"error: no spans for trace {args.trace_id!r} under {args.dir}",
              file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(records, indent=2))
    else:
        print(render_trace(records))
    return 0


def _cmd_top(args) -> int:
    from repro.obs.top import run_top

    iterations = 1 if args.once else args.iterations
    return run_top(
        url=args.url,
        run_dir=args.run_dir,
        interval=args.interval,
        iterations=iterations,
        json_output=args.json,
    )


def _cmd_list(args) -> int:
    from repro.benchmarks.registry import list_benchmarks

    if not getattr(args, "json", False):
        for name in list_benchmarks():
            print(name)
        return 0
    rows = []
    for name in list_benchmarks():
        stg = Spec.from_benchmark(name).stg
        marking = stg.initial_marking
        safe = all(marking.tokens(place) <= 1 for place in marking)
        rows.append(
            {
                "name": name,
                "signals": len(stg.signal_names),
                "transitions": len(stg.transitions),
                "places": len(stg.places),
                "class": "safe" if safe else "k-bounded",
            }
        )
    print(json.dumps(rows, indent=2))
    return 0


def _cmd_fuzz(args) -> int:
    from repro.corpus.campaign import CampaignConfig, run_campaign
    from repro.corpus.generator import GeneratorConfig, generate_corpus
    from repro.corpus.quarantine import CorpusQuarantine

    if args.fuzz_command == "run":
        config = CampaignConfig(
            count=args.count,
            seed=args.seed,
            jobs=args.jobs,
            max_markings=args.max_markings,
            time_budget=args.time_budget,
            faults=args.faults,
            quarantine=CorpusQuarantine(args.quarantine),
            shrink=not args.no_shrink,
        )
        on_event = progress_printer() if args.progress else None
        report = run_campaign(config, on_event=on_event)
        if args.json:
            print(json.dumps(report.to_dict(), indent=2))
        else:
            classes = ", ".join(
                f"{count} {klass}" for klass, count in sorted(report.by_class.items())
            )
            print(
                f"campaign seed={report.seed}: {report.checked}/{report.requested} "
                f"specs checked ({classes}; {report.consistent} consistent, "
                f"{report.synthesized} synthesized) in {report.total_seconds:.1f}s "
                f"({report.specs_per_second:.1f} specs/s), digest {report.digest}"
            )
            if report.budget_exhausted:
                print("time budget exhausted before the full count was generated")
            for finding in report.findings:
                tag = " [injected]" if finding.injected else ""
                where = f" -> {finding.quarantined}" if finding.quarantined else ""
                print(
                    f"FAIL {finding.spec_name} {finding.check}{tag}: "
                    f"{finding.detail}{where}"
                )
            if report.ok:
                print("no mismatches")
        return 0 if report.ok else 1

    if args.fuzz_command == "gen":
        from repro.stg.writer import write_g

        generator_config = GeneratorConfig(max_markings=args.max_markings)
        rows = []
        for corpus_spec in generate_corpus(args.count, args.seed, generator_config):
            summary = corpus_spec.summary()
            rows.append(summary)
            if args.out:
                os.makedirs(args.out, exist_ok=True)
                path = os.path.join(args.out, f"{corpus_spec.spec.name}.g")
                write_g(corpus_spec.spec.stg, path)
                summary["path"] = path
            if not args.json:
                print(
                    f"{summary['name']}: {summary['states']} states, "
                    f"{summary['class']}, consistent={summary['consistent']}, "
                    f"live={summary['live']}"
                )
        if args.json:
            print(json.dumps(rows, indent=2))
        return 0

    # replay
    quarantine = CorpusQuarantine(args.quarantine)
    results = list(quarantine.replay(max_markings=args.max_markings))
    bad = [r for r in results if not r.ok]
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "entry": r.entry.name,
                        "expected": r.expected,
                        "observed": r.observed,
                        "ok": r.ok,
                    }
                    for r in results
                ],
                indent=2,
            )
        )
    else:
        for r in results:
            verdict = "ok" if r.ok else "UNEXPECTED"
            print(f"{r.entry.name}: expected {r.expected}, observed {r.observed} [{verdict}]")
        print(f"{len(results) - len(bad)}/{len(results)} entries behave as recorded")
    return 1 if bad else 0


_COMMANDS = {
    "synthesize": _cmd_synthesize,
    "verify": _cmd_verify,
    "export": _cmd_export,
    "compare": _cmd_compare,
    "bench": _cmd_bench,
    "gap": _cmd_gap,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "trace": _cmd_trace,
    "top": _cmd_top,
    "list": _cmd_list,
    "fuzz": _cmd_fuzz,
}


def main(argv: Optional[list[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    from repro.api.faults import InjectedFault

    try:
        return _COMMANDS[args.command](args)
    except InjectedFault as error:
        # a chaos run's unrecovered fault: its own exit code so smoke
        # scripts can tell "fault escaped" from ordinary bad input
        print(f"injected fault: {error}", file=sys.stderr)
        return 3
    except SpecError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (SynthesisError, StateBasedSynthesisError) as error:
        print(f"synthesis error: {error}", file=sys.stderr)
        return 2
    except SatBudgetExceeded as error:
        # the exact backend ran out of candidate budget: a capacity limit,
        # reported like other resource exhaustion (state-space bounds)
        print(f"sat budget exceeded: {error}", file=sys.stderr)
        return 2
    except NetlistError as error:
        print(f"netlist error: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        # unknown library name / unreadable or malformed library file
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        raise  # closed stdout (e.g. piping into head) is not a CLI error
    except OSError as error:
        # unwritable -o target and similar filesystem failures
        print(f"error: {error}", file=sys.stderr)
        return 2
    except StateSpaceLimitExceeded as error:
        print(f"state-space limit exceeded: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
