"""Supervised prefork serving fleet: the scale-out half of the daemon.

``repro serve --workers N`` no longer runs one ``ThreadingHTTPServer``; it
runs a *supervisor* process that preforks ``N`` worker processes, each a
full hardened PR 5/6 server (bounded admission, request deadlines,
structured errors) bound to the **same** port via ``SO_REUSEPORT`` — the
kernel load-balances connections across the workers, so saturation
throughput scales with cores instead of being serialized through one
service lock.  All workers share one content-addressed
:class:`~repro.api.store.ArtifactStore`, so any worker can serve any
previously computed artifact.

Supervision contract
--------------------

* **Liveness** — every worker touches a per-incarnation heartbeat file from
  its main loop; a worker whose heartbeat goes stale for longer than
  ``heartbeat_timeout`` is declared hung, SIGKILLed and respawned.
* **Respawn** — a worker that exits for any unplanned reason (crash,
  ``worker.kill`` chaos, OOM kill) is respawned immediately with an
  incremented *generation*; the supervisor logs a ``respawn`` line and
  emits a ``worker`` event.  Clients never see the crash as a failure: the
  kernel routes new connections to the surviving workers and the
  :class:`~repro.api.client.Client` retries the broken ones.
* **Recycling** — after serving ``max_requests`` locked requests a worker
  drains itself and exits with :data:`EXIT_RECYCLED`; the supervisor
  respawns it with a fresh process (bounded memory growth, the classic
  prefork hygiene).  A recycle is planned and logged as ``recycle``.
* **Graceful drain** — SIGTERM (or Ctrl-C) to the supervisor forwards
  SIGTERM to every worker; each worker stops accepting, finishes its
  in-flight requests, and exits 0.  Workers still alive after
  ``drain_timeout`` seconds are SIGKILLed.  A drained fleet loses no
  admitted request.

Single-flight coalescing
------------------------

:class:`SingleFlight` coalesces concurrent computations of one store
address across the whole fleet: the first requester creates a lock file
under the store's ``flight_dir`` (``O_CREAT|O_EXCL`` — atomic on every
POSIX filesystem) and computes; every other thread or worker process that
misses the store for the same digest *waits* for the leader's atomic store
write instead of repeating the computation, then serves the stored
artifact (a ``coalesced`` stage resolution).  A thundering herd of K cold
requests for one spec costs one computation, not K.  Followers poll with a
deadline and watch the leader's pid: a crashed leader (its lock records
the pid) is detected, its lock is stolen, and the follower computes
locally — coalescing degrades, it never deadlocks and never loses a
request.

Chaos wiring
------------

The PR 6 fault sites drive the fleet deterministically: ``worker.kill``
rules (scoped by endpoint) hard-exit a worker mid-request — each worker
incarnation derives its schedule from ``(seed, worker slot, generation)``
so a fixed seed replays an identical kill schedule fleet-wide — and
``stage.delay`` stretches stage computations to widen race windows.  The
chaos acceptance bar of this PR: a seeded campaign of kills and delays
under concurrent load completes with **zero** client-visible failures.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from repro.api.events import Event, EventCallback
from repro.api.store import ArtifactStore, TMP_SWEEP_AGE
from repro.obs import Obs, get_obs

#: planned worker exit codes the supervisor distinguishes from crashes
EXIT_DRAINED = 0
EXIT_RECYCLED = 43

#: exit code of a ``worker.kill`` chaos hit (see faults.FaultInjector)
KILL_EXIT_CODE = 13


# ---------------------------------------------------------------------- #
# Single-flight coalescing
# ---------------------------------------------------------------------- #


class SingleFlight:
    """Fleet-wide coalescing of in-flight computations over store digests.

    ``acquire(digest)`` elects a leader with an ``O_CREAT|O_EXCL`` lock
    file recording the leader's pid; ``wait(digest, read)`` is the follower
    side — poll ``read()`` (typically ``store.peek``) until the leader's
    write lands, the leader dies, or ``wait_timeout`` passes.  Lock
    housekeeping is crash-safe: followers steal locks whose owning pid is
    gone, and :meth:`ArtifactStore.sweep` removes stale locks at startup.
    """

    def __init__(
        self,
        store: ArtifactStore,
        wait_timeout: float = 120.0,
        poll_interval: float = 0.01,
        obs: Optional[Obs] = None,
    ):
        self.store = store
        self.wait_timeout = wait_timeout
        self.poll_interval = poll_interval
        self.obs = obs
        #: telemetry: flights led / successfully coalesced / degraded
        self.led = 0
        self.followed = 0
        self.degraded = 0

    def _count(self, outcome: str) -> None:
        setattr(self, outcome, getattr(self, outcome) + 1)
        if self.obs is not None:
            self.obs.flights.inc(outcome=outcome)

    def _lock_path(self, digest: str) -> Path:
        return self.store.flight_dir / f"{digest}.flight"

    def acquire(self, digest: str) -> bool:
        """True when this caller is the leader for ``digest``."""
        path = self._lock_path(digest)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            # an unusable flight dir degrades to uncoalesced computation
            self._count("degraded")
            return True
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"pid": os.getpid(), "at": time.time()}))
        self._count("led")
        return True

    def release(self, digest: str) -> None:
        try:
            self._lock_path(digest).unlink()
        except OSError:
            pass

    def _leader_alive(self, digest: str) -> bool:
        """Best-effort liveness of the lock owner (same-host fleet)."""
        try:
            record = json.loads(self._lock_path(digest).read_text(encoding="utf-8"))
            pid = int(record["pid"])
        except (OSError, ValueError, KeyError, TypeError):
            # unreadable/half-written lock: give the owner the benefit of
            # the doubt until the wait deadline
            return True
        if pid == os.getpid():
            # our own pid: a sibling *thread* leads this flight
            return True
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except OSError:
            return True
        return True

    def wait(self, digest: str, read: Callable[[], Optional[dict]]) -> Optional[dict]:
        """Follower: poll ``read()`` until the leader's write lands.

        Returns the artifact document, or ``None`` when the caller should
        compute locally (leader crashed or deadline passed).  A dead
        leader's lock is stolen (unlinked) so later herds are not blocked.
        """
        deadline = time.monotonic() + self.wait_timeout
        while True:
            document = read()
            if document is not None:
                self._count("followed")
                return document
            lock = self._lock_path(digest)
            if not lock.exists():
                # the leader released (or was swept): one final read — its
                # write happens *before* the release
                document = read()
                if document is not None:
                    self._count("followed")
                else:
                    self._count("degraded")
                return document
            if not self._leader_alive(digest):
                try:
                    lock.unlink()
                except OSError:
                    pass
                self._count("degraded")
                return read()
            if time.monotonic() >= deadline:
                self._count("degraded")
                return None
            time.sleep(self.poll_interval)


# ---------------------------------------------------------------------- #
# Fleet configuration
# ---------------------------------------------------------------------- #


@dataclass
class FleetConfig:
    """Everything the supervisor and its workers need, JSON-serializable."""

    host: str = "127.0.0.1"
    port: int = 8765  # 0 picks an ephemeral port at supervisor start
    workers: int = 2
    store: Optional[str] = None  # store root; None serves memory-only
    max_requests: Optional[int] = None  # recycle a worker after N requests
    drain_timeout: float = 10.0
    heartbeat_interval: float = 0.5
    heartbeat_timeout: float = 10.0
    max_queue: int = 8
    request_timeout: Optional[float] = None
    faults: Optional[str] = None  # fault grammar shipped to every worker
    verbose: bool = False
    lru_size: int = 256  # per-worker hot-artifact tier above the store
    run_dir: Optional[str] = None  # heartbeat directory (default: tempdir)
    obs: Optional[str] = None  # observability grammar shipped to every worker

    def to_json(self) -> dict:
        return {
            "host": self.host,
            "port": self.port,
            "workers": self.workers,
            "store": self.store,
            "max_requests": self.max_requests,
            "drain_timeout": self.drain_timeout,
            "heartbeat_interval": self.heartbeat_interval,
            "heartbeat_timeout": self.heartbeat_timeout,
            "max_queue": self.max_queue,
            "request_timeout": self.request_timeout,
            "faults": self.faults,
            "verbose": self.verbose,
            "lru_size": self.lru_size,
            "run_dir": self.run_dir,
            "obs": self.obs,
        }

    @classmethod
    def from_json(cls, document: dict) -> "FleetConfig":
        return cls(**{key: document[key] for key in cls().to_json() if key in document})


@dataclass
class WorkerHandle:
    """One supervised worker slot."""

    slot: int
    generation: int
    process: subprocess.Popen
    heartbeat: Path
    started: float = field(default_factory=time.time)

    @property
    def pid(self) -> int:
        return self.process.pid

    def heartbeat_age(self) -> Optional[float]:
        """Seconds since the worker last proved liveness (None: no beat yet)."""
        try:
            return max(0.0, time.time() - self.heartbeat.stat().st_mtime)
        except OSError:
            return None


# ---------------------------------------------------------------------- #
# Supervisor
# ---------------------------------------------------------------------- #


class FleetSupervisor:
    """Prefork supervisor: spawn, watch, respawn, recycle, drain.

    Use as a context manager (tests) or through :func:`run_fleet` (CLI)::

        supervisor = FleetSupervisor(FleetConfig(port=0, workers=4))
        supervisor.start()          # binds the port, spawns the workers
        ...                         # drive load at supervisor.port
        supervisor.stop()           # graceful drain

    ``poll()`` performs one supervision pass and is safe to call from a
    test loop; :meth:`run` wraps it in the blocking signal-driven loop the
    CLI uses.
    """

    def __init__(
        self,
        config: FleetConfig,
        on_event: Optional[EventCallback] = None,
        log_stream=None,
    ):
        self.config = config
        self.on_event = on_event
        self.log_stream = log_stream if log_stream is not None else sys.stderr
        self.port: Optional[int] = None
        self.workers: list[Optional[WorkerHandle]] = []
        self.respawns = 0
        self.recycles = 0
        self.hung_kills = 0
        self._stopping = False
        self._run_dir: Optional[Path] = None
        self._owns_run_dir = False
        self.obs: Optional[Obs] = None  # built at start() once run_dir exists

    # -------------------------------------------------------------- #
    # Logging / events
    # -------------------------------------------------------------- #

    def _log(self, message: str) -> None:
        print(f"repro fleet: {message}", file=self.log_stream, flush=True)

    def _emit(self, slot: int, generation: int, status: str, detail: str) -> None:
        if self.on_event is not None:
            self.on_event(
                Event(
                    kind="worker",
                    spec=f"worker[{slot}]",
                    status=status,
                    index=slot,
                    attempt=generation,
                    detail=detail,
                )
            )

    # -------------------------------------------------------------- #
    # Lifecycle
    # -------------------------------------------------------------- #

    def _resolve_port(self) -> int:
        """Pick the fleet port; ``port=0`` asks the kernel for a free one.

        The probe socket binds with ``SO_REUSEPORT`` (like the workers
        will) and is closed before any worker spawns — the supervisor
        itself must never hold a socket on the serving port, or the kernel
        would route a share of the connections into a black hole.
        """
        import socket

        if self.config.port:
            return self.config.port
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            if hasattr(socket, "SO_REUSEPORT"):
                probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            probe.bind((self.config.host, 0))
            return probe.getsockname()[1]
        finally:
            probe.close()

    def _worker_env(self) -> dict:
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parent.parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing else package_root + os.pathsep + existing
        )
        return env

    def _spawn(self, slot: int, generation: int) -> WorkerHandle:
        heartbeat = self._run_dir / f"worker-{slot}.{generation}.beat"
        worker_config = {
            **self.config.to_json(),
            "port": self.port,
            "slot": slot,
            "generation": generation,
            "heartbeat": str(heartbeat),
            # always the *resolved* run dir: workers drop their trace sinks
            # and metric snapshots here even when the supervisor made a
            # temporary one
            "run_dir": str(self._run_dir),
        }
        # -c instead of -m: the package __init__ imports this module, and
        # runpy would warn about re-executing an already-imported module
        process = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "import sys; from repro.api.fleet import main; "
                "sys.exit(main(sys.argv[1:]))",
                "--worker",
                json.dumps(worker_config),
            ],
            env=self._worker_env(),
        )
        return WorkerHandle(
            slot=slot, generation=generation, process=process, heartbeat=heartbeat
        )

    def start(self) -> int:
        """Bind the port, sweep the store, spawn the workers; returns the port."""
        if self.config.run_dir is not None:
            self._run_dir = Path(self.config.run_dir)
            self._run_dir.mkdir(parents=True, exist_ok=True)
        else:
            self._run_dir = Path(tempfile.mkdtemp(prefix="repro-fleet-"))
            self._owns_run_dir = True
        obs = get_obs(self.config.obs)
        if obs is not None:
            self.obs = obs.reconfigure(
                dir=obs.dir or str(self._run_dir), service="supervisor"
            )
        if self.config.store is not None:
            # startup maintenance: orphaned temp files, stale flight locks
            # and stale-code-version entries from previous fleets
            store = ArtifactStore(self.config.store)
            swept = store.sweep(tmp_older_than=TMP_SWEEP_AGE)
            if any(swept.values()):
                self._log(f"store sweep: {swept}")
        self.port = self._resolve_port()
        self.workers = [self._spawn(slot, 1) for slot in range(self.config.workers)]
        for worker in self.workers:
            self._emit(worker.slot, worker.generation, "spawn", f"pid={worker.pid}")
        if self.obs is not None:
            self.obs.fleet_workers.set(float(self.config.workers))
            self.obs.write_snapshot()
        self._log(
            f"listening on http://{self.config.host}:{self.port} "
            f"with {self.config.workers} worker(s) "
            f"(store: {self.config.store or 'disabled'})"
        )
        return self.port

    def _respawn(self, slot: int, status: str, detail: str) -> None:
        old = self.workers[slot]
        generation = (old.generation if old else 0) + 1
        try:
            if old is not None:
                old.heartbeat.unlink()
        except OSError:
            pass
        worker = self._spawn(slot, generation)
        self.workers[slot] = worker
        if status == "recycle":
            self.recycles += 1
        else:
            self.respawns += 1
        if self.obs is not None:
            self.obs.fleet_events.inc(kind=status)
            self.obs.write_snapshot()
        self._log(
            f"worker[{slot}] {status}: {detail} -> respawned as "
            f"pid={worker.pid} gen={generation}"
        )
        self._emit(slot, generation, status, detail)

    def poll(self) -> None:
        """One supervision pass: reap exits, respawn crashes, kill hung."""
        if self._stopping:
            return
        for slot, worker in enumerate(self.workers):
            if worker is None:
                continue
            code = worker.process.poll()
            if code is not None:
                if code == EXIT_RECYCLED:
                    self._respawn(slot, "recycle", f"pid={worker.pid} served its budget")
                else:
                    self._respawn(
                        slot,
                        "respawn",
                        f"pid={worker.pid} gen={worker.generation} exited with {code}",
                    )
                continue
            age = worker.heartbeat_age()
            if age is None:
                # no heartbeat yet: allow the spawn grace period
                age = time.time() - worker.started
                if age <= self.config.heartbeat_timeout:
                    continue
                reason = f"pid={worker.pid} never heartbeat in {age:.1f}s"
            elif age <= self.config.heartbeat_timeout:
                continue
            else:
                reason = f"pid={worker.pid} heartbeat stale for {age:.1f}s"
            self.hung_kills += 1
            if self.obs is not None:
                self.obs.fleet_events.inc(kind="hung_kill")
            try:
                worker.process.kill()
                worker.process.wait(timeout=10)
            except OSError:
                pass
            self._respawn(slot, "respawn", reason + " (hung, killed)")

    def metrics(self) -> Optional[dict]:
        """Fleet-wide metric aggregation: merge every process's snapshot.

        Flushes the supervisor's own registry first, then merges all the
        ``metrics-*.json`` snapshot files in the run dir — every live and
        dead worker incarnation plus the supervisor itself.  Counters and
        histogram buckets add exactly; returns ``None`` with obs off.
        """
        if self.obs is None:
            return None
        from repro.obs import fleet_metrics

        self.obs.write_snapshot()
        return fleet_metrics(self._run_dir)

    def run(self, poll_interval: float = 0.2) -> int:
        """Supervise until SIGTERM/SIGINT, then drain (the CLI loop)."""
        stop = threading.Event()

        def _request_stop(signum, frame):  # noqa: ARG001 (signal signature)
            stop.set()

        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, _request_stop)
        try:
            while not stop.is_set():
                self.poll()
                stop.wait(poll_interval)
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            self.stop()
        return 0

    def stop(self, drain: bool = True) -> None:
        """Stop the fleet: graceful drain (default) or immediate kill."""
        if self._stopping:
            return
        self._stopping = True
        live = [worker for worker in self.workers if worker is not None]
        if drain:
            self._log(f"drain: signalling {len(live)} worker(s)")
            for worker in live:
                try:
                    worker.process.send_signal(signal.SIGTERM)
                except OSError:
                    pass
            deadline = time.monotonic() + self.config.drain_timeout
            graceful = 0
            killed = 0
            for worker in live:
                remaining = max(0.0, deadline - time.monotonic())
                try:
                    worker.process.wait(timeout=remaining)
                    graceful += 1
                except subprocess.TimeoutExpired:
                    try:
                        worker.process.kill()
                        worker.process.wait(timeout=10)
                    except OSError:
                        pass
                    killed += 1
            self._log(f"drain complete ({graceful} graceful, {killed} killed)")
        else:
            for worker in live:
                try:
                    worker.process.kill()
                    worker.process.wait(timeout=10)
                except OSError:
                    pass
        if self.obs is not None:
            self.obs.write_snapshot()
        if self._owns_run_dir and self._run_dir is not None:
            import shutil

            shutil.rmtree(self._run_dir, ignore_errors=True)

    def __enter__(self) -> "FleetSupervisor":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


# ---------------------------------------------------------------------- #
# Worker process
# ---------------------------------------------------------------------- #


def worker_main(config: dict) -> int:
    """Entry point of one fleet worker (``python -m repro.api.fleet --worker``).

    Builds the hardened server of PR 5/6 on a shared-port socket, with the
    store's hot LRU tier, fleet-wide single-flight coalescing and the
    per-incarnation chaos schedule, then serves until drained (SIGTERM or
    the ``max_requests`` recycle budget).
    """
    from repro.api.faults import get_injector
    from repro.api.pipeline import Pipeline
    from repro.api.server import create_server

    slot = int(config.get("slot", 0))
    generation = int(config.get("generation", 1))
    worker_id = f"{slot}.{generation}"
    heartbeat = Path(config["heartbeat"])
    interval = float(config.get("heartbeat_interval", 0.5))

    obs = get_obs(config.get("obs"))
    if obs is not None:
        # every incarnation writes its own sink/snapshot files in the run
        # dir; the supervisor merges them into the fleet-wide view
        obs = obs.reconfigure(
            dir=obs.dir or config.get("run_dir"), service=f"worker{worker_id}"
        )
    store = None
    flights = None
    if config.get("store"):
        store = ArtifactStore(
            config["store"], lru_size=int(config.get("lru_size", 0)), obs=obs
        )
        flights = SingleFlight(store, obs=obs)
    injector = None
    if config.get("faults"):
        # every incarnation gets its own deterministic schedule: same seed
        # -> same fleet-wide chaos, but a respawned worker does not replay
        # its predecessor's kill decisions (which would loop forever)
        injector = get_injector(config["faults"]).scoped(f"worker{slot}g{generation}")
    pipeline = Pipeline(store=store, faults=injector, flights=flights, obs=obs)

    drain = threading.Event()
    recycle = threading.Event()

    def _request_drain(signum, frame):  # noqa: ARG001 (signal signature)
        drain.set()

    signal.signal(signal.SIGTERM, _request_drain)

    server = create_server(
        host=config.get("host", "127.0.0.1"),
        port=int(config["port"]),
        pipeline=pipeline,
        verbose=bool(config.get("verbose", False)),
        max_queue=int(config.get("max_queue", 8)),
        request_timeout=config.get("request_timeout"),
        reuse_port=True,
        worker_id=worker_id,
        max_requests=config.get("max_requests"),
        on_recycle=recycle.set,
        chaos=injector,
        obs=obs,
    )
    serve_thread = threading.Thread(target=server.serve_forever, daemon=True)
    serve_thread.start()

    # the main thread is the liveness prover: beat until drained/recycled
    heartbeat.parent.mkdir(parents=True, exist_ok=True)
    exit_code = EXIT_DRAINED
    while True:
        heartbeat.touch()
        if obs is not None:
            # the heartbeat doubles as the metrics flush: every beat
            # publishes a fresh snapshot for the supervisor to merge
            obs.write_snapshot()
        if drain.is_set():
            break
        if recycle.is_set():
            exit_code = EXIT_RECYCLED
            break
        drain.wait(interval)
    # graceful drain: stop accepting, then join every in-flight request
    # thread (ThreadingHTTPServer.block_on_close joins them in server_close)
    server.service.draining = True
    server.shutdown()
    server.server_close()
    if obs is not None:
        # final flush *after* the drain joined the in-flight requests, so
        # the snapshot on disk covers every request this incarnation served
        obs.write_snapshot()
    return exit_code


# ---------------------------------------------------------------------- #
# CLI entry points
# ---------------------------------------------------------------------- #


def run_fleet(config: FleetConfig) -> int:
    """Start a supervised fleet and block until it is stopped (CLI)."""
    supervisor = FleetSupervisor(config, log_stream=sys.stdout)
    supervisor.start()
    # the CLI smoke contract: the same greppable line the single-process
    # server prints, so tooling can parse the bound port either way
    print(
        f"repro serve: listening on http://{config.host}:{supervisor.port} "
        f"(store: {config.store or 'disabled'})",
        flush=True,
    )
    return supervisor.run()


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.api.fleet")
    parser.add_argument("--worker", default=None, help="worker-mode JSON config")
    args = parser.parse_args(argv)
    if args.worker is None:
        parser.error("this module is spawned with --worker by the supervisor; "
                     "use 'repro serve --workers N' to start a fleet")
    return worker_main(json.loads(args.worker))


if __name__ == "__main__":
    raise SystemExit(main())
