"""Stage scheduler: many (spec × stage-bundle) jobs, optionally in parallel.

The scaling entry points used to be one hard-wired loop in
:mod:`repro.api.batch`; this module factors the machinery out into an
explicit :class:`Scheduler` that

* normalizes a batch of :class:`Job` descriptions (spec + options + which
  stages to run),
* executes them sequentially through one shared store-backed pipeline or
  fans out over a process pool,
* emits structured :class:`~repro.api.events.Event` records (``job`` kind,
  with ``index``/``total`` progress and ``attempt`` numbers),
* shares artifacts across workers through the on-disk
  :class:`~repro.api.store.ArtifactStore`, and — since PR 6 — *survives
  faults*:

  - a :class:`RetryPolicy` re-runs jobs that failed with a **retryable**
    error (IO, timeouts, :class:`~repro.api.faults.TransientError`) under
    exponential backoff with deterministic jitter; deterministic failures
    (bad specs, synthesis errors) stay fatal and are never retried;
  - per-job **deadlines** (``Job.timeout`` / ``Scheduler(timeout=...)``)
    abandon attempts that run too long in pool mode and retry them;
  - a crashed worker no longer poisons the batch: on
    ``BrokenProcessPool`` the pool is **respawned** and every unfinished
    job resubmitted; a job present at two pool crashes is re-run in an
    *isolated* single-worker pool, and if it kills that one too it is
    quarantined as a typed :class:`PoisonJobError` result while the rest
    of the batch drains normally.

Because the artifact store is content-addressed and writes are atomic,
every re-execution is idempotent: a retried or resubmitted job reuses the
stages its earlier attempt already persisted and produces bit-identical
artifacts — the chaos suite (``tests/test_faults.py``) pins this.

Two consumption styles are offered: :meth:`Scheduler.run` returns the
reports in job order (raising the first job error once queued work has been
cancelled and in-flight work drained — the harvested
:class:`JobResult` records stay inspectable on ``Scheduler.last_results``),
and :meth:`Scheduler.iter_results` yields :class:`JobResult` records in
*completion* order, each carrying either a report or the error — the
iterator API the experiments and the CLI progress view build on.

The deadline machinery earns its keep with PR 8's exact SAT backend: the
optimality-gap experiment (``repro.experiments.optimality_gap``) runs one
``Job.runner`` per registry spec, and CDCL descent is the first genuinely
open-ended work in the batch system — a spec whose search blows its
``Job.timeout`` degrades to a typed error row while the rest of the gap
table drains normally.
"""

from __future__ import annotations

import os
import time
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field, replace
from typing import Optional, Union

from repro.api.artifacts import Report
from repro.api.events import Event, EventCallback
from repro.api.faults import FaultsLike, TransientError, get_injector
from repro.api.spec import Spec, SpecLike
from repro.api.store import ArtifactStore, get_store
from repro.obs import ObsLike, get_obs, parse_header
from repro.synthesis.engine import SynthesisOptions


class JobTimeoutError(TransientError):
    """A job attempt exceeded its deadline (retryable by default)."""


class PoisonJobError(Exception):
    """A job that repeatedly crashed its worker processes.

    The scheduler quarantines such a job — its :class:`JobResult` carries
    this error — instead of letting it break the pool for the whole batch
    a third time.
    """


def _jitter_unit(seed: int, key: str, attempt: int) -> float:
    """Deterministic uniform [0, 1) from (seed, key, attempt)."""
    import hashlib

    digest = hashlib.sha256(f"{seed}|{key}|{attempt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) failed job attempts are re-run.

    ``retryable_types`` classifies errors: an instance of any listed type
    may be retried (IO errors, timeouts, :class:`TransientError` — which
    covers injected stage faults and :class:`JobTimeoutError`); everything
    else is *fatal* and fails the job on the first attempt.  Backoff is
    exponential with **deterministic** jitter: the perturbation is a pure
    function of ``(seed, job key, attempt)``, so a chaos run replays an
    identical schedule.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25  # fraction of the delay, spread symmetrically
    seed: int = 0
    retryable_types: tuple = (OSError, TimeoutError, ConnectionError, TransientError)

    def is_retryable(self, error: BaseException) -> bool:
        return isinstance(error, self.retryable_types)

    def classify(self, error: BaseException) -> str:
        return "retryable" if self.is_retryable(error) else "fatal"

    def delay_for(self, attempt: int, key: str = "") -> float:
        """Backoff before re-running after ``attempt`` failed attempts."""
        delay = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter:
            unit = _jitter_unit(self.seed, key, attempt)
            delay *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        return max(0.0, delay)


#: a policy that never retries (the pre-PR 6 behaviour)
NO_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0)


@dataclass
class Job:
    """One schedulable unit: a spec plus the stage bundle to run on it."""

    spec: Spec
    options: SynthesisOptions
    backend: str = "structural"
    map_technology: bool = False
    verify: bool = False
    verify_mapped: bool = False
    library: object = None
    max_markings: Optional[int] = None
    #: per-job deadline in seconds (pool mode; overrides the scheduler's)
    timeout: Optional[float] = None
    #: dotted ``module:function`` run *instead of* ``Pipeline.run`` — the
    #: hook custom farms (the corpus differential campaign, the SAT
    #: optimality-gap experiment) use to run their own per-spec work
    #: through the scheduler's retry/timeout/pool machinery.  The function receives ``(job, pipeline, faults)`` and
    #: returns a picklable report; ``total_seconds``/``event_detail`` on the
    #: report feed the ``done`` event when present.
    runner: Optional[str] = None
    #: plain-data options for the runner (must be picklable)
    payload: dict = field(default_factory=dict)

    @classmethod
    def make(cls, spec: SpecLike, options: Optional[SynthesisOptions] = None, **kwargs) -> "Job":
        return cls(spec=Spec.load(spec), options=options or SynthesisOptions(), **kwargs)


@dataclass
class JobResult:
    """The outcome of one job: a report, the error it raised, or cancelled.

    ``attempts`` counts executions (1 = first try succeeded); ``seconds``
    is wall time from first submission to completion, backoff included.
    ``cancelled`` marks a job the *consumer* abandoned (fail-fast cancelling
    queued work) — distinct from ``error``, which marks a job that ran and
    failed.
    """

    index: int
    job: Job
    report: Optional[Report] = None
    error: Optional[BaseException] = None
    attempts: int = 1
    seconds: float = 0.0
    cancelled: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None and not self.cancelled


def _strip_report(report: Report) -> Report:
    """Drop the analysis-side in-memory handles before pickling.

    Only the plain-data fields and the circuit/netlist travel back from a
    pool worker; the worker's approximation/regions objects would dominate
    the pickle payload for nothing (the artifact store already persisted
    their serial forms).
    """
    report.synthesis.refinement = None
    report.synthesis.regions = None
    if report.analysis is not None:
        report.analysis.approximation = None
        report.analysis.concurrency = None
        report.analysis.sm_cover = None
    if report.refinement is not None:
        report.refinement.approximation = None
        report.refinement.analysis = None
    if report.mapping is not None:
        report.mapping.mapped = None
    return report


_RUNNERS: dict = {}  # dotted-name -> callable (per-process cache)
_POOL_OBS: dict = {}  # obs grammar text -> Obs (per-process cache)


def _pool_obs(text: Optional[str]):
    """One long-lived Obs per pool process (per config), not per job.

    A pool worker executes many jobs; its registry must accumulate across
    them so the snapshot file it writes reflects the whole process, exactly
    like a fleet worker's.
    """
    if not text:
        return None
    obs = _POOL_OBS.get(text)
    if obs is None:
        obs = get_obs(text)
        _POOL_OBS[text] = obs
    return obs


def _resolve_runner(path: Optional[str]):
    """Resolve a ``module:function`` runner reference (cached per process)."""
    if path is None:
        return None
    runner = _RUNNERS.get(path)
    if runner is None:
        import importlib

        module_name, _, attr = path.partition(":")
        if not module_name or not attr:
            raise ValueError(f"malformed runner reference {path!r} (expected module:function)")
        runner = getattr(importlib.import_module(module_name), attr)
        _RUNNERS[path] = runner
    return runner


def _done_fields(report) -> dict:
    """``seconds``/``detail`` for the ``done`` event, for any report shape."""
    fields: dict = {}
    seconds = getattr(report, "total_seconds", None)
    if seconds is not None:
        fields["seconds"] = seconds
    detail = getattr(report, "event_detail", None)
    if callable(detail):
        fields["detail"] = detail()
    else:
        literals = getattr(report, "literals", None)
        if literals is not None:
            fields["detail"] = f"{literals} literals"
    return fields


def _execute_job(
    job: Job,
    store_spec: Optional[tuple[str, str]],
    faults_text: Optional[str] = None,
    attempt: int = 1,
    obs_text: Optional[str] = None,
) -> Report:
    """Process-pool worker: one job through a fresh store-backed pipeline.

    ``store_spec`` is ``(root, code_version)`` — the worker rebuilds the
    parent's store handle exactly, so entries written on either side of the
    process boundary are mutually visible (a custom code version must not
    silently fall back to the default stamp).

    ``faults_text``/``attempt`` carry the parent's fault schedule across
    the process boundary: decisions are re-derived from the grammar text
    with the job's attempt number as the deterministic token, so "kill the
    worker on attempt 1, spare attempt 2" holds no matter which worker
    process executes which attempt.

    ``obs_text`` carries the parent's observability config the same way;
    a ``job.payload["trace"]`` header (stamped at submission) parents this
    worker's ``job:<spec>`` span under the caller's span, so a trace
    stitches across the pool boundary exactly as it does across HTTP.
    """
    from repro.api.faults import FaultInjector
    from repro.api.pipeline import Pipeline
    from repro.api.store import ArtifactStore

    injector = None
    if faults_text:
        injector = FaultInjector.parse(faults_text).bind(
            attempt, salt=job.spec.content_hash
        )
        injector.kill_worker(scope=job.spec.name, attempt=attempt)
    obs = _pool_obs(obs_text)
    store = None
    if store_spec is not None:
        store = ArtifactStore(store_spec[0], code_version=store_spec[1], faults=injector)
    pipeline = Pipeline(store=store, faults=injector, obs=obs)

    def run() -> Report:
        runner = _resolve_runner(job.runner)
        if runner is not None:
            return runner(job, pipeline, injector)
        return _strip_report(
            pipeline.run(
                job.spec,
                job.options,
                backend=job.backend,
                map_technology=job.map_technology,
                verify=job.verify,
                verify_mapped=job.verify_mapped,
                library=job.library,
                max_markings=job.max_markings,
            )
        )

    if obs is None:
        return run()
    parent = parse_header(job.payload.get("trace"))
    try:
        with obs.tracer.span("job:" + job.spec.name, parent=parent, attempt=attempt):
            return run()
    finally:
        obs.write_snapshot()


class Scheduler:
    """Runs job batches sequentially or over a process pool.

    Parameters
    ----------
    jobs:
        ``None``/``0``/``1`` runs sequentially through one shared pipeline;
        ``n > 1`` fans out over a pool of ``n`` workers; ``n < 0`` uses the
        machine's CPU count.
    store:
        Optional durable artifact store (instance or path) shared by the
        sequential pipeline and by every pool worker.
    on_event:
        Callback receiving ``job`` progress events (and, in sequential mode,
        the pipeline's ``stage`` events as well).
    pipeline:
        Optional pipeline to reuse in sequential mode: its cache (and its
        own store, if any) are shared with earlier calls.  When ``store`` is
        *also* given it is attached to the reused pipeline, so the batch
        persists durably either way; the pipeline keeps its own ``on_event``
        (the scheduler's callback only receives the ``job`` events then).
    retry:
        The :class:`RetryPolicy` applied to failed attempts (default: three
        attempts for retryable errors; pass :data:`NO_RETRY` to disable).
    timeout:
        Default per-job deadline in seconds, enforced in pool mode (a job
        may override it); ``None`` disables deadlines.
    faults:
        Deterministic fault injection (:mod:`repro.api.faults`): an
        injector, a grammar string, or ``None`` to consult
        ``$REPRO_FAULTS``.  Shared with the sequential pipeline and shipped
        to every pool worker.
    obs:
        Observability config (:mod:`repro.obs`): an :class:`~repro.obs.Obs`
        instance, a grammar string, or ``None`` to consult ``$REPRO_OBS``.
        Job status counters land in its registry; in pool mode the config
        (and the caller's active trace context, if any) is shipped to every
        pool worker so job spans stitch under the submitting trace.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        store: Union[ArtifactStore, str, os.PathLike, None] = None,
        on_event: Optional[EventCallback] = None,
        pipeline=None,
        retry: Optional[RetryPolicy] = None,
        timeout: Optional[float] = None,
        faults: FaultsLike = None,
        obs: ObsLike = None,
    ):
        if jobs is not None and jobs < 0:
            jobs = os.cpu_count() or 1
        self.jobs = jobs or 1
        self.store = get_store(store)
        self.on_event = on_event
        self.retry = retry if retry is not None else RetryPolicy()
        self.timeout = timeout
        self.faults = get_injector(faults)
        self.obs = get_obs(obs)
        self._pipeline = pipeline
        #: the JobResult records of the most recent :meth:`run`, including
        #: in-flight results harvested before a fail-fast abort
        self.last_results: list[JobResult] = []

    # ------------------------------------------------------------------ #
    # Event helpers
    # ------------------------------------------------------------------ #

    def _emit(self, result_or_job, index: int, total: int, status: str, **kwargs):
        if self.obs is not None:
            self.obs.jobs.inc(status=status)
        if self.on_event is None:
            return
        job = result_or_job
        self.on_event(
            Event(
                kind="job",
                spec=job.spec.name,
                status=status,
                index=index + 1,
                total=total,
                **kwargs,
            )
        )

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def iter_results(
        self, jobs: Sequence[Job], stop_on_error: bool = False
    ) -> Iterator[JobResult]:
        """Yield one :class:`JobResult` per job, in completion order.

        With ``stop_on_error`` the first failed job halts *new* work: later
        sequential jobs never start; in pool mode queued submissions are
        cancelled (yielded with ``cancelled=True``) while already-running
        attempts drain and their results are still yielded.
        """
        jobs = list(jobs)
        total = len(jobs)
        if self.jobs <= 1 or total <= 1:
            yield from self._iter_sequential(jobs, total, stop_on_error)
        else:
            yield from self._iter_pool(jobs, total, stop_on_error)

    # ------------------------------------------------------------------ #
    # Sequential mode
    # ------------------------------------------------------------------ #

    def _iter_sequential(
        self, jobs: list[Job], total: int, stop_on_error: bool = False
    ) -> Iterator[JobResult]:
        from repro.api.pipeline import Pipeline

        policy = self.retry
        pipeline = self._pipeline
        if pipeline is None:
            pipeline = Pipeline(
                store=self.store, on_event=self.on_event, faults=self.faults,
                obs=self.obs,
            )
        elif self.store is not None and pipeline.store is not self.store:
            # an explicitly requested store wins over (and is attached to)
            # the reused pipeline, as the constructor docstring promises
            pipeline.store = self.store
        for index, job in enumerate(jobs):
            self._emit(job, index, total, "start")
            started = time.monotonic()
            attempts = 0
            while True:
                attempts += 1
                try:
                    runner = _resolve_runner(job.runner)
                    if runner is not None:
                        report = runner(job, pipeline, self.faults)
                    else:
                        report = pipeline.run(
                            job.spec,
                            job.options,
                            backend=job.backend,
                            map_technology=job.map_technology,
                            verify=job.verify,
                            verify_mapped=job.verify_mapped,
                            library=job.library,
                            max_markings=job.max_markings,
                        )
                except Exception as error:
                    if attempts < policy.max_attempts and policy.is_retryable(error):
                        delay = policy.delay_for(attempts, key=job.spec.content_hash)
                        self._emit(
                            job, index, total, "retry",
                            attempt=attempts,
                            detail=f"{type(error).__name__}: {error}",
                            seconds=delay,
                        )
                        if delay > 0:
                            time.sleep(delay)
                        continue
                    self._emit(
                        job, index, total, "error",
                        detail=str(error), attempt=attempts,
                    )
                    yield JobResult(
                        index=index, job=job, error=error,
                        attempts=attempts, seconds=time.monotonic() - started,
                    )
                    if stop_on_error:
                        return
                    break
                self._emit(
                    job, index, total, "done",
                    attempt=attempts,
                    **_done_fields(report),
                )
                yield JobResult(
                    index=index, job=job, report=report,
                    attempts=attempts, seconds=time.monotonic() - started,
                )
                break

    # ------------------------------------------------------------------ #
    # Pool mode
    # ------------------------------------------------------------------ #

    def _iter_pool(
        self, jobs: list[Job], total: int, stop_on_error: bool = False
    ) -> Iterator[JobResult]:
        from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
        from concurrent.futures import TimeoutError as FuturesTimeoutError

        policy = self.retry
        store_spec = (
            (str(self.store.root), self.store.code_version)
            if self.store is not None
            else None
        )
        faults_text = self.faults.to_text() if self.faults is not None else None
        obs_text = (
            self.obs.to_text(include_service=False) if self.obs is not None else None
        )
        if self.obs is not None:
            context = self.obs.tracer.current()
            if context is not None:
                # stamp the submitting span so pool-side job spans stitch
                # under the caller's trace across the process boundary
                for job in jobs:
                    job.payload.setdefault("trace", context.to_header())

        attempts = [0] * total
        exposures = [0] * total  # pool-crash incidents the job was part of
        started = [0.0] * total
        finished = [False] * total
        futures: dict = {}  # future -> index
        deadlines: dict = {}  # future -> monotonic deadline
        retry_queue: list[tuple[float, int]] = []  # (ready_at, index)
        halted = False

        pool = ProcessPoolExecutor(max_workers=self.jobs)

        def deadline_of(job: Job) -> Optional[float]:
            return job.timeout if job.timeout is not None else self.timeout

        def submit(index: int) -> bool:
            """Submit one attempt; False when the pool is broken."""
            attempts[index] += 1
            job = jobs[index]
            if attempts[index] == 1:
                started[index] = time.monotonic()
                self._emit(job, index, total, "start")
            try:
                future = pool.submit(
                    _execute_job, job, store_spec, faults_text, attempts[index],
                    obs_text,
                )
            except BrokenExecutor:
                attempts[index] -= 1  # the attempt never started
                return False
            futures[future] = index
            limit = deadline_of(job)
            if limit is not None:
                deadlines[future] = time.monotonic() + limit
            return True

        def make_result(index: int, **kwargs) -> JobResult:
            finished[index] = True
            return JobResult(
                index=index,
                job=jobs[index],
                attempts=attempts[index],
                seconds=time.monotonic() - started[index] if started[index] else 0.0,
                **kwargs,
            )

        def settle_failure(index: int, error: BaseException):
            """Retry a failed attempt or produce the final error result."""
            nonlocal halted
            job = jobs[index]
            if not halted and attempts[index] < policy.max_attempts and policy.is_retryable(error):
                delay = policy.delay_for(attempts[index], key=job.spec.content_hash)
                self._emit(
                    job, index, total, "retry",
                    attempt=attempts[index],
                    detail=f"{type(error).__name__}: {error}",
                    seconds=delay,
                )
                retry_queue.append((time.monotonic() + delay, index))
                return None
            self._emit(job, index, total, "error", detail=str(error), attempt=attempts[index])
            if stop_on_error:
                halted = True
            return make_result(index, error=error)

        def cancel_outstanding():
            """Fail-fast bookkeeping: queued work is *cancelled*, not failed."""
            results = []
            for future in list(futures):
                if future.cancel():
                    index = futures.pop(future)
                    deadlines.pop(future, None)
                    attempts[index] -= 1  # the cancelled attempt never ran
                    self._emit(jobs[index], index, total, "cancelled")
                    results.append(make_result(index, cancelled=True))
            for _, index in retry_queue:
                self._emit(jobs[index], index, total, "cancelled")
                results.append(make_result(index, cancelled=True))
            retry_queue.clear()
            return results

        def run_isolated(index: int):
            """Last resort for a pool-killer suspect: its own disposable pool."""
            nonlocal halted
            job = jobs[index]
            attempts[index] += 1
            solo = ProcessPoolExecutor(max_workers=1)
            try:
                future = solo.submit(
                    _execute_job, job, store_spec, faults_text, attempts[index],
                    obs_text,
                )
                try:
                    report = future.result(timeout=deadline_of(job))
                except BrokenExecutor:
                    error = PoisonJobError(
                        f"job {job.spec.name!r} crashed {exposures[index]} worker pools "
                        f"and its isolation worker; quarantined after "
                        f"{attempts[index]} attempts"
                    )
                    return settle_poison(index, error)
                except FuturesTimeoutError:
                    error = JobTimeoutError(
                        f"job {job.spec.name!r} exceeded its {deadline_of(job)}s "
                        f"deadline in isolation"
                    )
                    return settle_poison(index, error)
                except Exception as error:
                    return settle_failure(index, error)
                self._emit(
                    job, index, total, "done",
                    attempt=attempts[index],
                    **_done_fields(report),
                )
                return make_result(index, report=report)
            finally:
                solo.shutdown(wait=False)

        def settle_poison(index: int, error: BaseException):
            nonlocal halted
            self._emit(
                jobs[index], index, total, "error",
                detail=str(error), attempt=attempts[index],
            )
            if stop_on_error:
                halted = True
            return make_result(index, error=error)

        for index in range(total):
            if not submit(index):
                break  # crash recovery below picks the stragglers up

        try:
            while not all(finished):
                now = time.monotonic()
                # launch due retries (unless the consumer asked for a halt)
                if retry_queue and not halted:
                    due = [i for (t, i) in retry_queue if t <= now]
                    retry_queue = [(t, i) for (t, i) in retry_queue if t > now]
                    for index in due:
                        submit(index)
                if halted and retry_queue:
                    for result in cancel_outstanding():
                        yield result
                if not futures:
                    if not retry_queue:
                        break
                    time.sleep(max(0.0, min(t for t, _ in retry_queue) - time.monotonic()))
                    continue
                timeout = None
                ticks = [t for t, _ in retry_queue] + list(deadlines.values())
                if ticks:
                    timeout = max(0.0, min(ticks) - time.monotonic())
                done, _ = wait(set(futures), timeout=timeout, return_when=FIRST_COMPLETED)

                crashed: list[int] = []
                for future in done:
                    index = futures.pop(future)
                    deadlines.pop(future, None)
                    if future.cancelled():
                        attempts[index] -= 1
                        self._emit(jobs[index], index, total, "cancelled")
                        yield make_result(index, cancelled=True)
                        continue
                    error = future.exception()
                    if isinstance(error, BrokenExecutor):
                        crashed.append(index)
                        continue
                    if error is None:
                        report = future.result()
                        self._emit(
                            jobs[index], index, total, "done",
                            attempt=attempts[index],
                            **_done_fields(report),
                        )
                        yield make_result(index, report=report)
                        continue
                    result = settle_failure(index, error)
                    if result is not None:
                        yield result

                # deadline enforcement: abandon overdue attempts and retry
                now = time.monotonic()
                for future, limit in list(deadlines.items()):
                    if limit > now or future.done():
                        continue
                    index = futures.pop(future)
                    deadlines.pop(future)
                    future.cancel()  # only effective while still queued
                    job = jobs[index]
                    error = JobTimeoutError(
                        f"job {job.spec.name!r} exceeded its "
                        f"{deadline_of(job)}s deadline (attempt {attempts[index]})"
                    )
                    self._emit(
                        job, index, total, "timeout",
                        detail=str(error), attempt=attempts[index],
                    )
                    result = settle_failure(index, error)
                    if result is not None:
                        yield result

                if crashed or (futures and getattr(pool, "_broken", False)):
                    # a worker died: every unfinished future on this pool is
                    # dead too.  Respawn, resubmit the survivors, and run
                    # twice-exposed suspects in isolation.
                    survivors = set(crashed)
                    for future in list(futures):
                        index = futures.pop(future)
                        deadlines.pop(future, None)
                        survivors.add(index)
                    survivors.update(i for _, i in retry_queue)
                    retry_queue.clear()
                    pool.shutdown(wait=False)
                    pool = ProcessPoolExecutor(max_workers=self.jobs)
                    suspects = []
                    for index in sorted(survivors):
                        if finished[index]:
                            continue
                        exposures[index] += 1
                        if halted:
                            self._emit(jobs[index], index, total, "cancelled")
                            yield make_result(index, cancelled=True)
                        elif exposures[index] >= 2:
                            suspects.append(index)
                        else:
                            submit(index)
                    for index in suspects:
                        result = run_isolated(index)
                        if result is not None:
                            yield result
        finally:
            for future in futures:
                future.cancel()
            pool.shutdown(wait=True)

    def run(self, jobs: Sequence[Job]) -> list[Report]:
        """Execute a batch; returns reports in job order.

        Fails fast: the first failed result stops *new* work (sequential
        jobs after it never start; queued pool submissions are cancelled),
        already-running attempts drain, and the first error is re-raised.
        The harvested :class:`JobResult` records — including the in-flight
        results completed during the drain and the cancelled-by-consumer
        markers — stay inspectable on :attr:`last_results`.  Use
        :meth:`iter_results` to drain a batch despite failures.
        """
        jobs = list(jobs)
        results: list[Optional[JobResult]] = [None] * len(jobs)
        first_error: Optional[BaseException] = None
        for result in self.iter_results(jobs, stop_on_error=True):
            results[result.index] = result
            if result.error is not None and first_error is None:
                first_error = result.error
        self.last_results = [result for result in results if result is not None]
        if first_error is not None:
            raise first_error
        return [result.report for result in results if result is not None]


def make_jobs(
    specs: Iterable[SpecLike],
    options: Optional[SynthesisOptions] = None,
    **kwargs,
) -> list[Job]:
    """Build one :class:`Job` per spec with shared options/stage flags."""
    options = options or SynthesisOptions()
    template = Job(spec=None, options=options, **kwargs)  # type: ignore[arg-type]
    return [replace(template, spec=Spec.load(spec)) for spec in specs]
