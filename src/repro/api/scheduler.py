"""Stage scheduler: many (spec × stage-bundle) jobs, optionally in parallel.

The scaling entry points used to be one hard-wired loop in
:mod:`repro.api.batch`; this module factors the machinery out into an
explicit :class:`Scheduler` that

* normalizes a batch of :class:`Job` descriptions (spec + options + which
  stages to run),
* executes them sequentially through one shared store-backed pipeline or
  fans out over a process pool,
* emits structured :class:`~repro.api.events.Event` records (``job`` kind,
  with ``index``/``total`` progress) instead of printing, and
* shares artifacts across workers through the on-disk
  :class:`~repro.api.store.ArtifactStore` — a worker that recomputes nothing
  because an earlier run already persisted the stages is the normal case,
  not an optimization.

Two consumption styles are offered: :meth:`Scheduler.run` returns the
reports in job order (raising the first job error after the batch drains),
and :meth:`Scheduler.iter_results` yields :class:`JobResult` records in
*completion* order, each carrying either a report or the error — the
iterator API the experiments and the CLI progress view build on.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, replace
from typing import Optional, Union

from repro.api.artifacts import Report
from repro.api.events import Event, EventCallback
from repro.api.spec import Spec, SpecLike
from repro.api.store import ArtifactStore, get_store
from repro.synthesis.engine import SynthesisOptions


@dataclass
class Job:
    """One schedulable unit: a spec plus the stage bundle to run on it."""

    spec: Spec
    options: SynthesisOptions
    backend: str = "structural"
    map_technology: bool = False
    verify: bool = False
    verify_mapped: bool = False
    library: object = None
    max_markings: Optional[int] = None

    @classmethod
    def make(cls, spec: SpecLike, options: Optional[SynthesisOptions] = None, **kwargs) -> "Job":
        return cls(spec=Spec.load(spec), options=options or SynthesisOptions(), **kwargs)


@dataclass
class JobResult:
    """The outcome of one job: a report or the exception it raised."""

    index: int
    job: Job
    report: Optional[Report] = None
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _strip_report(report: Report) -> Report:
    """Drop the analysis-side in-memory handles before pickling.

    Only the plain-data fields and the circuit/netlist travel back from a
    pool worker; the worker's approximation/regions objects would dominate
    the pickle payload for nothing (the artifact store already persisted
    their serial forms).
    """
    report.synthesis.refinement = None
    report.synthesis.regions = None
    if report.analysis is not None:
        report.analysis.approximation = None
        report.analysis.concurrency = None
        report.analysis.sm_cover = None
    if report.refinement is not None:
        report.refinement.approximation = None
        report.refinement.analysis = None
    if report.mapping is not None:
        report.mapping.mapped = None
    return report


def _execute_job(job: Job, store_spec: Optional[tuple[str, str]]) -> Report:
    """Process-pool worker: one job through a fresh store-backed pipeline.

    ``store_spec`` is ``(root, code_version)`` — the worker rebuilds the
    parent's store handle exactly, so entries written on either side of the
    process boundary are mutually visible (a custom code version must not
    silently fall back to the default stamp).
    """
    from repro.api.pipeline import Pipeline
    from repro.api.store import ArtifactStore

    store = None
    if store_spec is not None:
        store = ArtifactStore(store_spec[0], code_version=store_spec[1])
    pipeline = Pipeline(store=store)
    report = pipeline.run(
        job.spec,
        job.options,
        backend=job.backend,
        map_technology=job.map_technology,
        verify=job.verify,
        verify_mapped=job.verify_mapped,
        library=job.library,
        max_markings=job.max_markings,
    )
    return _strip_report(report)


class Scheduler:
    """Runs job batches sequentially or over a process pool.

    Parameters
    ----------
    jobs:
        ``None``/``0``/``1`` runs sequentially through one shared pipeline;
        ``n > 1`` fans out over a pool of ``n`` workers; ``n < 0`` uses the
        machine's CPU count.
    store:
        Optional durable artifact store (instance or path) shared by the
        sequential pipeline and by every pool worker.
    on_event:
        Callback receiving ``job`` progress events (and, in sequential mode,
        the pipeline's ``stage`` events as well).
    pipeline:
        Optional pipeline to reuse in sequential mode: its cache (and its
        own store, if any) are shared with earlier calls.  When ``store`` is
        *also* given it is attached to the reused pipeline, so the batch
        persists durably either way; the pipeline keeps its own ``on_event``
        (the scheduler's callback only receives the ``job`` events then).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        store: Union[ArtifactStore, str, os.PathLike, None] = None,
        on_event: Optional[EventCallback] = None,
        pipeline=None,
    ):
        if jobs is not None and jobs < 0:
            jobs = os.cpu_count() or 1
        self.jobs = jobs or 1
        self.store = get_store(store)
        self.on_event = on_event
        self._pipeline = pipeline

    # ------------------------------------------------------------------ #
    # Event helpers
    # ------------------------------------------------------------------ #

    def _emit(self, result_or_job, index: int, total: int, status: str, **kwargs):
        if self.on_event is None:
            return
        job = result_or_job
        self.on_event(
            Event(
                kind="job",
                spec=job.spec.name,
                status=status,
                index=index + 1,
                total=total,
                **kwargs,
            )
        )

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def iter_results(self, jobs: Sequence[Job]) -> Iterator[JobResult]:
        """Yield one :class:`JobResult` per job, in completion order."""
        jobs = list(jobs)
        total = len(jobs)
        if self.jobs <= 1 or total <= 1:
            yield from self._iter_sequential(jobs, total)
        else:
            yield from self._iter_pool(jobs, total)

    def _iter_sequential(self, jobs: list[Job], total: int) -> Iterator[JobResult]:
        from repro.api.pipeline import Pipeline

        pipeline = self._pipeline
        if pipeline is None:
            pipeline = Pipeline(store=self.store, on_event=self.on_event)
        elif self.store is not None and pipeline.store is not self.store:
            # an explicitly requested store wins over (and is attached to)
            # the reused pipeline, as the constructor docstring promises
            pipeline.store = self.store
        for index, job in enumerate(jobs):
            self._emit(job, index, total, "start")
            try:
                report = pipeline.run(
                    job.spec,
                    job.options,
                    backend=job.backend,
                    map_technology=job.map_technology,
                    verify=job.verify,
                    verify_mapped=job.verify_mapped,
                    library=job.library,
                    max_markings=job.max_markings,
                )
            except Exception as error:
                self._emit(job, index, total, "error", detail=str(error))
                yield JobResult(index=index, job=job, error=error)
                continue
            self._emit(
                job, index, total, "done",
                seconds=report.total_seconds,
                detail=f"{report.literals} literals",
            )
            yield JobResult(index=index, job=job, report=report)

    def _iter_pool(self, jobs: list[Job], total: int) -> Iterator[JobResult]:
        from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

        store_spec = (
            (str(self.store.root), self.store.code_version)
            if self.store is not None
            else None
        )
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            futures = {}
            for index, job in enumerate(jobs):
                self._emit(job, index, total, "start")
                futures[pool.submit(_execute_job, job, store_spec)] = index
            pending = set(futures)
            try:
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        index = futures[future]
                        job = jobs[index]
                        error = future.exception()
                        if error is not None:
                            self._emit(job, index, total, "error", detail=str(error))
                            yield JobResult(index=index, job=job, error=error)
                            continue
                        report = future.result()
                        self._emit(
                            job, index, total, "done",
                            seconds=report.total_seconds,
                            detail=f"{report.literals} literals",
                        )
                        yield JobResult(index=index, job=job, report=report)
            finally:
                # a consumer abandoning the iterator early (e.g. run()'s
                # fail-fast) must not leave queued jobs running
                for future in pending:
                    future.cancel()

    def run(self, jobs: Sequence[Job]) -> list[Report]:
        """Execute a batch; returns reports in job order.

        Fails fast: the first failed result re-raises immediately (in
        sequential mode completion order *is* job order, so this matches
        the abort-on-first-error semantics of the pre-scheduler batch
        loop; in pool mode still-queued jobs are cancelled, already-running
        ones finish).  Use :meth:`iter_results` to drain a batch despite
        failures.
        """
        results: list[Optional[JobResult]] = [None] * len(jobs)
        for result in self.iter_results(jobs):
            if result.error is not None:
                raise result.error
            results[result.index] = result
        return [result.report for result in results if result is not None]


def make_jobs(
    specs: Iterable[SpecLike],
    options: Optional[SynthesisOptions] = None,
    **kwargs,
) -> list[Job]:
    """Build one :class:`Job` per spec with shared options/stage flags."""
    options = options or SynthesisOptions()
    template = Job(spec=None, options=options, **kwargs)  # type: ignore[arg-type]
    return [replace(template, spec=Spec.load(spec)) for spec in specs]
