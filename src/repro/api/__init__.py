"""Unified public API: one spec-to-circuit entry point.

This package is the front door of the reproduction.  It redesigns the
public surface around three concepts:

* :class:`Spec` — one constructor for every input kind (``.g`` file,
  benchmark-registry name, in-memory STG) with a stable content hash;
* :class:`Pipeline` — the staged flow ``analyze → refine → synthesize →
  map → verify`` with per-stage memoisation keyed on spec hash + options,
  so sweeps and batches reuse the shared analysis front-end;
* backends — :class:`StructuralBackend` (the paper's contribution) and
  :class:`StateBasedBackend` (the exhaustive baseline), plus the
  *differential* mode :func:`compare` that runs both and cross-checks the
  circuits' next-state functions.

Since PR 5 the API is *durable*: every artifact is losslessly
JSON-serializable, a content-addressed on-disk store
(:class:`~repro.api.store.ArtifactStore`) can back the pipeline cache so
results survive processes, a :class:`~repro.api.scheduler.Scheduler` runs
batches through a process pool with structured progress events, and the
whole pipeline can be served as a long-lived HTTP daemon
(``python -m repro serve`` / :class:`repro.api.client.Client`).

Since PR 6 the execution layers are *fault-tolerant*, and provably so:
deterministic, seedable fault injection (:mod:`repro.api.faults`, the
``faults=`` keyword, ``$REPRO_FAULTS``) drives a chaos suite over retrying
(:class:`~repro.api.scheduler.RetryPolicy`), per-job deadlines, crashed
worker-pool recovery (:class:`~repro.api.scheduler.PoisonJobError`
quarantines repeat killers), store corruption quarantine, and graceful
server degradation (bounded admission, ``/ready``, structured errors).

Since PR 9 the daemon *scales out*: ``repro serve --workers N`` runs a
supervised prefork fleet (:mod:`repro.api.fleet`) of ``SO_REUSEPORT``
workers sharing one store — crashed or hung workers are respawned,
recycled workers drain gracefully, thundering herds on one cold spec are
coalesced to a single computation fleet-wide
(:class:`~repro.api.fleet.SingleFlight`), and the
:class:`~repro.api.client.Client` grows a per-endpoint circuit breaker,
hedged reads, and a retry wall-clock budget.

Since PR 10 the system is *observable* end to end (:mod:`repro.obs`, the
``obs=`` keyword, ``$REPRO_OBS``): spans propagate across process
boundaries — client → fleet worker → pipeline stages → pool jobs → SAT
descent phases — into per-process JSON-lines sinks stitched by trace id,
a zero-dependency metrics registry (counters/gauges/histograms with fixed
buckets, so cross-process merges are exact) feeds every worker's
``GET /metrics`` and the supervisor's fleet-wide aggregation, and
``repro top`` / ``repro trace`` render the live dashboard and span trees.

Convenience entry points::

    from repro.api import run, compare, synthesize_many

    report = run("sequencer", level=5, verify=True)      # one spec
    report = run("sequencer", store="~/.cache/repro")    # durable artifacts
    reports = synthesize_many(["fig1", "sequencer"], jobs=4)
    diff = compare("muller_pipeline_4")                  # both backends

The CLI (``python -m repro``) is a thin wrapper over the same calls.
"""

from __future__ import annotations

from typing import Optional

from repro.api.artifacts import (
    AnalysisArtifact,
    MappedVerificationArtifact,
    MappingArtifact,
    RefinementArtifact,
    Report,
    SynthesisArtifact,
    VerificationArtifact,
)
from repro.api.backends import (
    Backend,
    BACKEND_NAMES,
    ComparisonReport,
    StateBasedBackend,
    StructuralBackend,
    compare,
    get_backend,
    register_backend,
)
from repro.api.batch import synthesize_many
from repro.api.client import Client, ClientError, CircuitOpenError
from repro.api.events import Event, EventLog, progress_printer
from repro.api.faults import (
    FaultInjector,
    FaultRule,
    InjectedFault,
    TransientError,
    get_injector,
)
from repro.api.fleet import FleetConfig, FleetSupervisor, SingleFlight
from repro.api.pipeline import Pipeline
from repro.api.scheduler import (
    NO_RETRY,
    Job,
    JobResult,
    JobTimeoutError,
    PoisonJobError,
    RetryPolicy,
    Scheduler,
    make_jobs,
)
from repro.api.spec import Spec, SpecError, SpecLike
from repro.api.store import ArtifactStore, default_store_path, get_store
from repro.obs import Obs, get_obs
from repro.synthesis.engine import SynthesisError, SynthesisOptions


def run(
    spec: SpecLike,
    level: int = 5,
    backend: str = "structural",
    assume_csc: bool = False,
    map_technology: bool = False,
    verify: bool = False,
    verify_mapped: bool = False,
    library=None,
    max_markings: Optional[int] = None,
    options: Optional[SynthesisOptions] = None,
    pipeline: Optional[Pipeline] = None,
    store=None,
) -> Report:
    """One-call spec-to-circuit synthesis returning a typed :class:`Report`.

    ``options`` overrides the individual ``level``/``assume_csc`` knobs;
    pass a ``pipeline`` to share cached artifacts across calls, or ``store``
    (an :class:`ArtifactStore` or a path) to persist and reuse artifacts
    across processes.  ``verify_mapped`` differentially checks the mapped
    gate-level netlist (implies ``map_technology``); ``library`` selects the
    gate library (a :class:`repro.gates.GateLibrary`, a built-in name, or a
    JSON path).
    """
    if options is None:
        options = SynthesisOptions(level=level, assume_csc=assume_csc)
    if pipeline is None:
        pipeline = Pipeline(store=store)
    elif store is not None:
        # an explicitly requested store wins over (and is attached to) the
        # reused pipeline — same contract as the Scheduler
        resolved = get_store(store)
        if pipeline.store is not resolved:
            pipeline.store = resolved
    return pipeline.run(
        spec,
        options,
        backend=backend,
        map_technology=map_technology,
        verify=verify,
        verify_mapped=verify_mapped,
        library=library,
        max_markings=max_markings,
    )


__all__ = [
    "AnalysisArtifact",
    "ArtifactStore",
    "Backend",
    "BACKEND_NAMES",
    "Client",
    "ClientError",
    "ComparisonReport",
    "Event",
    "EventLog",
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "Job",
    "JobResult",
    "JobTimeoutError",
    "MappedVerificationArtifact",
    "MappingArtifact",
    "NO_RETRY",
    "Obs",
    "Pipeline",
    "PoisonJobError",
    "RefinementArtifact",
    "Report",
    "RetryPolicy",
    "Scheduler",
    "Spec",
    "SpecError",
    "SpecLike",
    "StateBasedBackend",
    "StructuralBackend",
    "SynthesisArtifact",
    "SynthesisError",
    "SynthesisOptions",
    "TransientError",
    "VerificationArtifact",
    "compare",
    "default_store_path",
    "get_backend",
    "get_injector",
    "get_obs",
    "get_store",
    "make_jobs",
    "progress_printer",
    "register_backend",
    "run",
    "synthesize_many",
]
