"""Structured progress events of the pipeline and the scheduler.

Long-running consumers of the API (batch sweeps, the experiment tables, the
``repro`` CLI, the HTTP server) used to learn about progress through ad-hoc
prints, or not at all.  This module replaces that with one typed event
stream: producers (:class:`repro.api.pipeline.Pipeline`,
:class:`repro.api.scheduler.Scheduler`) call a single ``on_event`` callback
with :class:`Event` records, and consumers choose how to render or collect
them.

Event kinds
-----------

* ``stage`` — one pipeline stage resolved for one spec.  ``status`` tells
  how: ``computed`` (an actual stage computation), ``memory`` (in-process
  cache hit), ``store`` (on-disk artifact store hit) or ``coalesced``
  (served by waiting on another in-flight computation of the same key —
  the fleet's single-flight path).
* ``job`` — one scheduler job changed state: ``start``, ``done``,
  ``retry`` (a retryable failure or timeout, about to run again),
  ``timeout``, or ``error``; ``index``/``total`` carry batch progress,
  ``attempt`` the 1-based execution attempt, ``detail`` a short
  human-readable summary (literal count, error text, backoff delay).
* ``worker`` — the fleet supervisor changed one worker slot: ``spawn``,
  ``respawn`` (crashed or hung, replaced) or ``recycle`` (served its
  ``max_requests`` budget, replaced); ``index`` is the slot, ``attempt``
  the new generation, ``detail`` the human-readable cause.

Consumers
---------

:class:`EventLog` collects events for inspection (used heavily by the
tests); :func:`progress_printer` renders one line per event to a stream —
the CLI's ``--progress`` view.  Both are plain callbacks: anything callable
with one :class:`Event` argument works, and exceptions raised by a consumer
are the consumer's problem (producers do not swallow them, so tests fail
loudly).
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass
from typing import Callable, Optional

#: the callback signature every producer accepts
EventCallback = Callable[["Event"], None]


@dataclass(frozen=True)
class Event:
    """One structured progress record."""

    kind: str  # "stage" | "job" | "worker"
    spec: str
    # stage: computed|memory|store|coalesced — job: start|done|retry|timeout|
    # error — worker: spawn|respawn|recycle
    status: str
    stage: Optional[str] = None  # analyze|refine|synthesize|map|verify|verify_mapped
    seconds: Optional[float] = None
    index: Optional[int] = None  # 1-based position within a batch
    total: Optional[int] = None
    detail: Optional[str] = None
    attempt: Optional[int] = None  # 1-based job execution attempt

    def to_json(self) -> dict:
        """A JSON-serializable dict, ``None`` fields omitted (wire format)."""
        document = {"kind": self.kind, "spec": self.spec, "status": self.status}
        for key in ("stage", "seconds", "index", "total", "detail", "attempt"):
            value = getattr(self, key)
            if value is not None:
                document[key] = value
        return document

    def describe(self) -> str:
        """One-line human readable rendering."""
        parts = []
        if self.index is not None and self.total is not None:
            parts.append(f"[{self.index}/{self.total}]")
        parts.append(self.spec)
        if self.stage is not None:
            parts.append(self.stage)
        parts.append(self.status)
        if self.attempt is not None and self.attempt > 1:
            parts.append(f"attempt {self.attempt}")
        if self.seconds is not None:
            parts.append(f"{self.seconds:.3f}s")
        if self.detail:
            parts.append(f"({self.detail})")
        return " ".join(parts)


class EventLog:
    """A thread-safe collecting callback (the default test consumer)."""

    def __init__(self) -> None:
        self.events: list[Event] = []
        self._lock = threading.Lock()

    def __call__(self, event: Event) -> None:
        with self._lock:
            self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(list(self.events))

    def of_kind(self, kind: str) -> list[Event]:
        return [event for event in self.events if event.kind == kind]

    def stage_statuses(self, stage: str) -> list[str]:
        """The resolution history of one stage, in event order."""
        return [
            event.status
            for event in self.events
            if event.kind == "stage" and event.stage == stage
        ]


def progress_printer(stream=None) -> EventCallback:
    """An event callback printing one line per event (CLI ``--progress``)."""
    target = stream if stream is not None else sys.stderr

    def _print(event: Event) -> None:
        print(event.describe(), file=target, flush=True)

    return _print


def fanout(*callbacks: Optional[EventCallback]) -> Optional[EventCallback]:
    """Combine several optional callbacks into one (``None``s are dropped)."""
    active = [callback for callback in callbacks if callback is not None]
    if not active:
        return None
    if len(active) == 1:
        return active[0]

    def _fan(event: Event) -> None:
        for callback in active:
            callback(event)

    return _fan
