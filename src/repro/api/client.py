"""Python client for the ``repro serve`` daemon.

A thin stdlib-only (``urllib``) wrapper over the server's JSON endpoints so
experiments, CI and notebooks can run against a *warm* long-lived pipeline
instead of paying process start-up and front-end analysis per invocation::

    from repro.api.client import Client

    client = Client("http://127.0.0.1:8765")
    result = client.synthesize("sequencer", level=5, verify=True)
    result.report.literals          # a full typed Report, rebuilt locally
    result.resolution["computed"]   # 0 when the server had it cached

Spec arguments accept everything :meth:`repro.api.spec.Spec.load` accepts
*locally*: registry names and inline ``.g`` text travel as-is, while
``Spec``/STG instances and local file paths are canonicalized to ``.g``
text before being sent (the server never needs access to the client's
filesystem).

Server-side request errors (HTTP 4xx/5xx) surface as :class:`ClientError`
carrying the server's message; connection failures raise the usual
``urllib.error.URLError``.
"""

from __future__ import annotations

import json
import os
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Optional

from repro.api.artifacts import Report
from repro.api.spec import Spec, SpecLike
from repro.stg.stg import STG
from repro.stg.writer import write_g


class ClientError(RuntimeError):
    """A request the server rejected (carries the server's error message)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


@dataclass
class SynthesisResult:
    """One ``/synthesize`` response: the typed report plus cache telemetry."""

    report: Report
    #: {"computed": n, "memory": n, "store": n, "stages": [...]} — how the
    #: server resolved each stage of this request
    resolution: dict
    raw: dict

    @property
    def cached(self) -> bool:
        """True when the server computed nothing for this request."""
        return self.resolution.get("computed", 0) == 0


def _spec_payload(spec: SpecLike) -> str:
    """Encode a spec argument for transport.

    Registry names and inline text pass through; everything else (paths,
    STGs, Spec objects) is canonicalized to ``.g`` text locally.
    """
    if isinstance(spec, Spec):
        return spec.text
    if isinstance(spec, STG):
        return write_g(spec)
    if isinstance(spec, os.PathLike):
        return Spec.from_file(spec).text
    if isinstance(spec, str):
        if "\n" not in spec and (os.path.exists(spec) or spec.endswith(".g")):
            return Spec.from_file(spec).text
        return spec
    raise TypeError(f"cannot send a {type(spec).__name__} as a spec")


class Client:
    """HTTP client bound to one ``repro serve`` base URL."""

    def __init__(self, base_url: str = "http://127.0.0.1:8765", timeout: float = 300.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #

    def _request(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                payload = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                message = json.loads(error.read().decode("utf-8")).get("error", "")
            except (ValueError, OSError):
                message = error.reason
            raise ClientError(error.code, message) from error
        return payload

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #

    def health(self) -> dict:
        return self._request("GET", "/health")

    def benchmarks(self) -> list[str]:
        return self._request("GET", "/benchmarks")["benchmarks"]

    def cache_stats(self) -> dict:
        return self._request("GET", "/cache/stats")

    def cache_clear(self, disk: bool = False) -> dict:
        return self._request("POST", "/cache/clear", {"disk": disk})

    def synthesize(
        self,
        spec: SpecLike,
        level: int = 5,
        backend: str = "structural",
        assume_csc: bool = False,
        map_technology: bool = False,
        verify: bool = False,
        verify_mapped: bool = False,
        library: Optional[str] = None,
        max_markings: Optional[int] = None,
    ) -> SynthesisResult:
        """Run one spec through the server's pipeline; returns the typed report."""
        payload = self._request(
            "POST",
            "/synthesize",
            {
                "spec": _spec_payload(spec),
                "level": level,
                "backend": backend,
                "assume_csc": assume_csc,
                "map": map_technology,
                "verify": verify,
                "verify_mapped": verify_mapped,
                "library": library,
                "max_markings": max_markings,
            },
        )
        return SynthesisResult(
            report=Report.from_json(payload["report"]),
            resolution=payload.get("resolution", {}),
            raw=payload,
        )

    def verify(
        self,
        spec: SpecLike,
        level: int = 5,
        backend: str = "structural",
        assume_csc: bool = False,
        mapped: bool = False,
        library: Optional[str] = None,
        max_markings: Optional[int] = None,
    ) -> dict:
        return self._request(
            "POST",
            "/verify",
            {
                "spec": _spec_payload(spec),
                "level": level,
                "backend": backend,
                "assume_csc": assume_csc,
                "mapped": mapped,
                "library": library,
                "max_markings": max_markings,
            },
        )

    def compare(
        self,
        spec: SpecLike,
        level: int = 5,
        assume_csc: bool = False,
        max_markings: Optional[int] = None,
    ) -> dict:
        """Differential mode on the server; returns the comparison document."""
        return self._request(
            "POST",
            "/compare",
            {
                "spec": _spec_payload(spec),
                "level": level,
                "assume_csc": assume_csc,
                "max_markings": max_markings,
            },
        )

    def export(
        self,
        spec: SpecLike,
        fmt: str = "verilog",
        level: int = 5,
        assume_csc: bool = False,
        library: Optional[str] = None,
    ) -> str:
        """Map on the server and return the rendered netlist text."""
        payload = self._request(
            "POST",
            "/export",
            {
                "spec": _spec_payload(spec),
                "format": fmt,
                "level": level,
                "assume_csc": assume_csc,
                "library": library,
            },
        )
        return payload["text"]
