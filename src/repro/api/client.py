"""Python client for the ``repro serve`` daemon.

A thin stdlib-only (``urllib``) wrapper over the server's JSON endpoints so
experiments, CI and notebooks can run against a *warm* long-lived pipeline
instead of paying process start-up and front-end analysis per invocation::

    from repro.api.client import Client

    client = Client("http://127.0.0.1:8765")
    result = client.synthesize("sequencer", level=5, verify=True)
    result.report.literals          # a full typed Report, rebuilt locally
    result.resolution["computed"]   # 0 when the server had it cached

Spec arguments accept everything :meth:`repro.api.spec.Spec.load` accepts
*locally*: registry names and inline ``.g`` text travel as-is, while
``Spec``/STG instances and local file paths are canonicalized to ``.g``
text before being sent (the server never needs access to the client's
filesystem).

Server-side request errors (HTTP 4xx/5xx) surface as :class:`ClientError`
carrying the server's structured error document (stable ``code``, the
human ``message``, and the ``retryable`` flag); connection failures raise
the usual ``urllib.error.URLError``.  Responses the server marks retryable
— overload shedding (503), deadline misses (504) — and transient transport
failures are retried automatically with exponential backoff, honouring the
server's ``Retry-After`` header; ``Client(retries=0)`` restores the
single-shot behaviour.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Optional

from repro.api.artifacts import Report
from repro.api.spec import Spec, SpecLike
from repro.stg.stg import STG
from repro.stg.writer import write_g


class ClientError(RuntimeError):
    """A request the server rejected.

    Carries the server's structured error document: ``status`` (HTTP),
    ``code`` (stable machine-readable identifier, e.g. ``spec_error`` or
    ``overloaded``), ``message`` (human-readable) and ``retryable``.
    """

    def __init__(
        self,
        status: int,
        message: str,
        code: str = "",
        retryable: bool = False,
        retry_after: Optional[float] = None,
    ):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.code = code
        self.retryable = retryable
        self.retry_after = retry_after


def _parse_error_body(error: urllib.error.HTTPError) -> tuple[str, str, bool]:
    """(code, message, retryable) from a structured or legacy error body."""
    try:
        document = json.loads(error.read().decode("utf-8")).get("error", "")
    except (ValueError, OSError):
        return "", str(error.reason), False
    if isinstance(document, dict):
        return (
            str(document.get("code", "")),
            str(document.get("message", "")),
            bool(document.get("retryable", False)),
        )
    return "", str(document), False


@dataclass
class SynthesisResult:
    """One ``/synthesize`` response: the typed report plus cache telemetry."""

    report: Report
    #: {"computed": n, "memory": n, "store": n, "stages": [...]} — how the
    #: server resolved each stage of this request
    resolution: dict
    raw: dict

    @property
    def cached(self) -> bool:
        """True when the server computed nothing for this request."""
        return self.resolution.get("computed", 0) == 0


def _spec_payload(spec: SpecLike) -> str:
    """Encode a spec argument for transport.

    Registry names and inline text pass through; everything else (paths,
    STGs, Spec objects) is canonicalized to ``.g`` text locally.
    """
    if isinstance(spec, Spec):
        return spec.text
    if isinstance(spec, STG):
        return write_g(spec)
    if isinstance(spec, os.PathLike):
        return Spec.from_file(spec).text
    if isinstance(spec, str):
        if "\n" not in spec and (os.path.exists(spec) or spec.endswith(".g")):
            return Spec.from_file(spec).text
        return spec
    raise TypeError(f"cannot send a {type(spec).__name__} as a spec")


class Client:
    """HTTP client bound to one ``repro serve`` base URL.

    ``retries`` bounds *additional* attempts after the first (0 disables
    retrying); only responses the server marks ``retryable`` (and transport
    errors such as a connection reset mid-restart) are retried, after an
    exponential backoff starting at ``backoff`` seconds — or after the
    server's ``Retry-After`` hint when one is sent and is larger.
    """

    def __init__(
        self,
        base_url: str = "http://127.0.0.1:8765",
        timeout: float = 300.0,
        retries: int = 3,
        backoff: float = 0.25,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #

    def _request_once(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                payload = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            code, message, retryable = _parse_error_body(error)
            retry_after: Optional[float] = None
            hint = error.headers.get("Retry-After") if error.headers else None
            if hint:
                try:
                    retry_after = float(hint)
                except ValueError:
                    pass
            raise ClientError(
                error.code, message, code=code, retryable=retryable,
                retry_after=retry_after,
            ) from error
        return payload

    def _request(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        attempt = 0
        while True:
            attempt += 1
            try:
                return self._request_once(method, path, body)
            except ClientError as error:
                if not error.retryable or attempt > self.retries:
                    raise
                delay = self.backoff * 2.0 ** (attempt - 1)
                if error.retry_after is not None:
                    delay = max(delay, error.retry_after)
            except urllib.error.URLError:
                # connection refused/reset — e.g. the daemon restarting
                if attempt > self.retries:
                    raise
                delay = self.backoff * 2.0 ** (attempt - 1)
            time.sleep(delay)

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #

    def health(self) -> dict:
        return self._request("GET", "/health")

    def benchmarks(self) -> list[str]:
        return self._request("GET", "/benchmarks")["benchmarks"]

    def cache_stats(self) -> dict:
        return self._request("GET", "/cache/stats")

    def cache_clear(self, disk: bool = False) -> dict:
        return self._request("POST", "/cache/clear", {"disk": disk})

    def synthesize(
        self,
        spec: SpecLike,
        level: int = 5,
        backend: str = "structural",
        assume_csc: bool = False,
        map_technology: bool = False,
        verify: bool = False,
        verify_mapped: bool = False,
        library: Optional[str] = None,
        max_markings: Optional[int] = None,
    ) -> SynthesisResult:
        """Run one spec through the server's pipeline; returns the typed report."""
        payload = self._request(
            "POST",
            "/synthesize",
            {
                "spec": _spec_payload(spec),
                "level": level,
                "backend": backend,
                "assume_csc": assume_csc,
                "map": map_technology,
                "verify": verify,
                "verify_mapped": verify_mapped,
                "library": library,
                "max_markings": max_markings,
            },
        )
        return SynthesisResult(
            report=Report.from_json(payload["report"]),
            resolution=payload.get("resolution", {}),
            raw=payload,
        )

    def verify(
        self,
        spec: SpecLike,
        level: int = 5,
        backend: str = "structural",
        assume_csc: bool = False,
        mapped: bool = False,
        library: Optional[str] = None,
        max_markings: Optional[int] = None,
    ) -> dict:
        return self._request(
            "POST",
            "/verify",
            {
                "spec": _spec_payload(spec),
                "level": level,
                "backend": backend,
                "assume_csc": assume_csc,
                "mapped": mapped,
                "library": library,
                "max_markings": max_markings,
            },
        )

    def compare(
        self,
        spec: SpecLike,
        level: int = 5,
        assume_csc: bool = False,
        max_markings: Optional[int] = None,
    ) -> dict:
        """Differential mode on the server; returns the comparison document."""
        return self._request(
            "POST",
            "/compare",
            {
                "spec": _spec_payload(spec),
                "level": level,
                "assume_csc": assume_csc,
                "max_markings": max_markings,
            },
        )

    def export(
        self,
        spec: SpecLike,
        fmt: str = "verilog",
        level: int = 5,
        assume_csc: bool = False,
        library: Optional[str] = None,
    ) -> str:
        """Map on the server and return the rendered netlist text."""
        payload = self._request(
            "POST",
            "/export",
            {
                "spec": _spec_payload(spec),
                "format": fmt,
                "level": level,
                "assume_csc": assume_csc,
                "library": library,
            },
        )
        return payload["text"]
