"""Python client for the ``repro serve`` daemon.

A thin stdlib-only (``urllib``) wrapper over the server's JSON endpoints so
experiments, CI and notebooks can run against a *warm* long-lived pipeline
instead of paying process start-up and front-end analysis per invocation::

    from repro.api.client import Client

    client = Client("http://127.0.0.1:8765")
    result = client.synthesize("sequencer", level=5, verify=True)
    result.report.literals          # a full typed Report, rebuilt locally
    result.resolution["computed"]   # 0 when the server had it cached

Spec arguments accept everything :meth:`repro.api.spec.Spec.load` accepts
*locally*: registry names and inline ``.g`` text travel as-is, while
``Spec``/STG instances and local file paths are canonicalized to ``.g``
text before being sent (the server never needs access to the client's
filesystem).

Server-side request errors (HTTP 4xx/5xx) surface as :class:`ClientError`
carrying the server's structured error document (stable ``code``, the
human ``message``, and the ``retryable`` flag); connection failures raise
the usual ``urllib.error.URLError``.  Responses the server marks retryable
— overload shedding (503), deadline misses (504) — and transient transport
failures (connection refused/reset, a worker killed mid-response, a fleet
member restarting) are retried automatically with exponential backoff,
honouring the server's ``Retry-After`` header in both its delta-seconds
and HTTP-date forms; ``Client(retries=0)`` restores the single-shot
behaviour and ``retry_budget`` caps the total retry wall-clock so a
flapping server cannot hang callers indefinitely.

Fleet hardening (PR 9): a per-endpoint *circuit breaker* trips to ``open``
after ``breaker_threshold`` consecutive exhausted failures — further calls
fail fast with :class:`CircuitOpenError` instead of piling onto a dead
endpoint — and probes half-open after ``breaker_reset`` seconds.
``hedge_delay`` arms *hedged reads* for idempotent GET endpoints: when the
first attempt has not answered within the delay, a second concurrent
attempt races it and the first response wins (tail-latency insurance
against one slow or dying worker).
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from email.utils import parsedate_to_datetime
from typing import Optional

#: transport-level failures worth retrying: the connection never happened
#: (refused, DNS), died mid-flight (reset, a killed fleet worker answering
#: with a truncated response), or timed out.  ``URLError`` must come first
#: in except clauses only where ordering matters; membership here is what
#: the retry loop checks.
TRANSPORT_ERRORS = (
    urllib.error.URLError,
    http.client.HTTPException,
    ConnectionError,
    TimeoutError,
)

from repro.api.artifacts import Report
from repro.api.spec import Spec, SpecLike
from repro.obs import ObsLike, TRACE_HEADER, get_obs
from repro.stg.stg import STG
from repro.stg.writer import write_g


class ClientError(RuntimeError):
    """A request the server rejected.

    Carries the server's structured error document: ``status`` (HTTP),
    ``code`` (stable machine-readable identifier, e.g. ``spec_error`` or
    ``overloaded``), ``message`` (human-readable) and ``retryable``.
    """

    def __init__(
        self,
        status: int,
        message: str,
        code: str = "",
        retryable: bool = False,
        retry_after: Optional[float] = None,
    ):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.code = code
        self.retryable = retryable
        self.retry_after = retry_after


class CircuitOpenError(RuntimeError):
    """The endpoint's circuit breaker is open; the call failed fast.

    Raised without touching the network: the endpoint exhausted
    ``breaker_threshold`` consecutive calls (including their in-call
    retries), so further traffic is pointless until the breaker half-opens
    after ``breaker_reset`` seconds.  ``retry_in`` says how long that is.
    """

    def __init__(self, endpoint: str, retry_in: float):
        super().__init__(
            f"circuit open for {endpoint} (retry in {retry_in:.1f}s)"
        )
        self.endpoint = endpoint
        self.retry_in = retry_in


@dataclass
class _Breaker:
    """Per-endpoint circuit state: closed → open → half-open → closed."""

    threshold: int
    reset: float
    failures: int = 0
    opened_at: Optional[float] = None
    lock: threading.Lock = field(default_factory=threading.Lock)

    def admit(self, endpoint: str) -> None:
        """Raise :class:`CircuitOpenError` while the circuit is open.

        After ``reset`` seconds the next caller is admitted as the
        half-open probe (the breaker stays open for everyone else until
        that probe reports success).
        """
        with self.lock:
            if self.opened_at is None:
                return
            elapsed = time.monotonic() - self.opened_at
            if elapsed < self.reset:
                raise CircuitOpenError(endpoint, self.reset - elapsed)
            # half-open: admit this probe, push the next window out so
            # concurrent callers keep failing fast until the probe lands
            self.opened_at = time.monotonic()

    def record(self, ok: bool) -> None:
        with self.lock:
            if ok:
                self.failures = 0
                self.opened_at = None
            else:
                self.failures += 1
                if self.failures >= self.threshold:
                    self.opened_at = time.monotonic()


def parse_retry_after(value: Optional[str]) -> Optional[float]:
    """Seconds encoded by a ``Retry-After`` header, or ``None``.

    Accepts both forms of RFC 9110 §10.2.3: delta-seconds (``"5"``) and
    the HTTP-date (``"Fri, 08 Aug 2026 12:00:00 GMT"``); a date in the
    past clamps to zero, garbage parses to ``None``.
    """
    if not value:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        pass
    try:
        when = parsedate_to_datetime(value)
    except (TypeError, ValueError):
        return None
    if when.tzinfo is None:
        from datetime import timezone

        when = when.replace(tzinfo=timezone.utc)
    from datetime import datetime, timezone

    return max(0.0, (when - datetime.now(timezone.utc)).total_seconds())


def _parse_error_body(error: urllib.error.HTTPError) -> tuple[str, str, bool]:
    """(code, message, retryable) from a structured or legacy error body."""
    try:
        document = json.loads(error.read().decode("utf-8")).get("error", "")
    except (ValueError, OSError):
        return "", str(error.reason), False
    if isinstance(document, dict):
        return (
            str(document.get("code", "")),
            str(document.get("message", "")),
            bool(document.get("retryable", False)),
        )
    return "", str(document), False


@dataclass
class SynthesisResult:
    """One ``/synthesize`` response: the typed report plus cache telemetry."""

    report: Report
    #: {"computed": n, "memory": n, "store": n, "stages": [...]} — how the
    #: server resolved each stage of this request
    resolution: dict
    raw: dict

    @property
    def cached(self) -> bool:
        """True when the server computed nothing for this request."""
        return self.resolution.get("computed", 0) == 0


def _spec_payload(spec: SpecLike) -> str:
    """Encode a spec argument for transport.

    Registry names and inline text pass through; everything else (paths,
    STGs, Spec objects) is canonicalized to ``.g`` text locally.
    """
    if isinstance(spec, Spec):
        return spec.text
    if isinstance(spec, STG):
        return write_g(spec)
    if isinstance(spec, os.PathLike):
        return Spec.from_file(spec).text
    if isinstance(spec, str):
        if "\n" not in spec and (os.path.exists(spec) or spec.endswith(".g")):
            return Spec.from_file(spec).text
        return spec
    raise TypeError(f"cannot send a {type(spec).__name__} as a spec")


class Client:
    """HTTP client bound to one ``repro serve`` base URL.

    ``retries`` bounds *additional* attempts after the first (0 disables
    retrying); only responses the server marks ``retryable`` (and transport
    errors such as a connection reset mid-restart) are retried, after an
    exponential backoff starting at ``backoff`` seconds — or after the
    server's ``Retry-After`` hint when one is sent and is larger.
    ``retry_budget`` caps the *total* wall-clock a single logical call may
    spend waiting between attempts (``None``: uncapped).

    ``breaker_threshold`` consecutive *exhausted* calls (retries included)
    against one endpoint trip its circuit breaker: further calls raise
    :class:`CircuitOpenError` instantly until a half-open probe succeeds
    after ``breaker_reset`` seconds.  ``breaker_threshold=0`` disables the
    breaker.  ``hedge_delay`` (seconds, ``None``: off) arms hedged reads
    for GET endpoints: a second concurrent attempt is fired when the first
    has not answered in time, and the first response wins.

    ``obs`` (an :class:`repro.obs.Obs`, a grammar string, or ``None`` to
    consult ``$REPRO_OBS``) arms distributed tracing: every logical call
    runs inside a ``client:`` span (covering all its retries) whose context
    travels in the ``X-Repro-Trace`` header, so the server's spans stitch
    under the client's in a cross-process trace.
    """

    def __init__(
        self,
        base_url: str = "http://127.0.0.1:8765",
        timeout: float = 300.0,
        retries: int = 3,
        backoff: float = 0.25,
        retry_budget: Optional[float] = None,
        breaker_threshold: int = 0,
        breaker_reset: float = 5.0,
        hedge_delay: Optional[float] = None,
        obs: ObsLike = None,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.retry_budget = retry_budget
        self.breaker_threshold = breaker_threshold
        self.breaker_reset = breaker_reset
        self.hedge_delay = hedge_delay
        self.obs = get_obs(obs)
        self._breakers: dict[str, _Breaker] = {}
        self._breakers_lock = threading.Lock()
        #: hedged attempts actually fired (telemetry for the bench/tests)
        self.hedges = 0

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #

    def _request_once(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if self.obs is not None:
            context = self.obs.tracer.current()
            if context is not None:
                headers[TRACE_HEADER] = context.to_header()
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                payload = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            code, message, retryable = _parse_error_body(error)
            hint = error.headers.get("Retry-After") if error.headers else None
            raise ClientError(
                error.code, message, code=code, retryable=retryable,
                retry_after=parse_retry_after(hint),
            ) from error
        return payload

    def _attempt(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        """One attempt, hedged for idempotent GETs when ``hedge_delay`` is set."""
        if self.hedge_delay is None or method != "GET":
            return self._request_once(method, path, body)
        import queue

        results: "queue.Queue[tuple[bool, object]]" = queue.Queue()

        def _run() -> None:
            try:
                results.put((True, self._request_once(method, path, body)))
            except Exception as error:  # noqa: BLE001 — relayed to the caller
                results.put((False, error))

        threading.Thread(target=_run, daemon=True).start()
        try:
            ok, value = results.get(timeout=self.hedge_delay)
        except queue.Empty:
            # primary is slow: race a hedge; the first answer wins, and a
            # failed first answer falls back to the other one
            self.hedges += 1
            threading.Thread(target=_run, daemon=True).start()
            ok, value = results.get(timeout=self.timeout + self.hedge_delay)
            if not ok:
                ok, value = results.get(timeout=self.timeout + self.hedge_delay)
        if ok:
            return value  # type: ignore[return-value]
        raise value  # type: ignore[misc]

    def _breaker_for(self, path: str) -> Optional[_Breaker]:
        if not self.breaker_threshold:
            return None
        with self._breakers_lock:
            breaker = self._breakers.get(path)
            if breaker is None:
                breaker = _Breaker(self.breaker_threshold, self.breaker_reset)
                self._breakers[path] = breaker
            return breaker

    def _request(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        if self.obs is None:
            return self._request_guarded(method, path, body)
        # one span per *logical* call: retries and hedges are all children
        # of the same client span, and its context rides every attempt's
        # X-Repro-Trace header
        with self.obs.tracer.span(f"client:{method} {path}"):
            return self._request_guarded(method, path, body)

    def _request_guarded(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> dict:
        breaker = self._breaker_for(path)
        if breaker is not None:
            breaker.admit(path)
        try:
            result = self._retry_loop(method, path, body)
        except (ClientError, *TRANSPORT_ERRORS) as error:
            # only failures that exhausted their retries reach here; a 4xx
            # the server calls non-retryable is the caller's bug, not the
            # endpoint's health, and must not trip the breaker
            if breaker is not None:
                retryable = not isinstance(error, ClientError) or error.retryable
                if retryable:
                    breaker.record(ok=False)
            raise
        if breaker is not None:
            breaker.record(ok=True)
        return result

    def _retry_loop(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        attempt = 0
        started = time.monotonic()
        while True:
            attempt += 1
            try:
                return self._attempt(method, path, body)
            except ClientError as error:
                if not error.retryable or attempt > self.retries:
                    raise
                delay = self.backoff * 2.0 ** (attempt - 1)
                if error.retry_after is not None:
                    delay = max(delay, error.retry_after)
                last_error: BaseException = error
            except TRANSPORT_ERRORS as error:
                # connection refused/reset, a worker killed mid-response,
                # the daemon restarting — the fleet contract is that a
                # retry lands on a healthy sibling
                if attempt > self.retries:
                    raise
                delay = self.backoff * 2.0 ** (attempt - 1)
                last_error = error
            if self.retry_budget is not None:
                elapsed = time.monotonic() - started
                if elapsed + delay > self.retry_budget:
                    # the budget is spent: surface the last failure now
                    # instead of sleeping past the caller's patience
                    raise last_error
            time.sleep(delay)

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #

    def health(self) -> dict:
        return self._request("GET", "/health")

    def benchmarks(self) -> list[str]:
        return self._request("GET", "/benchmarks")["benchmarks"]

    def cache_stats(self) -> dict:
        return self._request("GET", "/cache/stats")

    def cache_clear(self, disk: bool = False) -> dict:
        return self._request("POST", "/cache/clear", {"disk": disk})

    def synthesize(
        self,
        spec: SpecLike,
        level: int = 5,
        backend: str = "structural",
        assume_csc: bool = False,
        map_technology: bool = False,
        verify: bool = False,
        verify_mapped: bool = False,
        library: Optional[str] = None,
        max_markings: Optional[int] = None,
    ) -> SynthesisResult:
        """Run one spec through the server's pipeline; returns the typed report."""
        payload = self._request(
            "POST",
            "/synthesize",
            {
                "spec": _spec_payload(spec),
                "level": level,
                "backend": backend,
                "assume_csc": assume_csc,
                "map": map_technology,
                "verify": verify,
                "verify_mapped": verify_mapped,
                "library": library,
                "max_markings": max_markings,
            },
        )
        return SynthesisResult(
            report=Report.from_json(payload["report"]),
            resolution=payload.get("resolution", {}),
            raw=payload,
        )

    def synthesize_many(
        self,
        specs: list,
        level: int = 5,
        backend: str = "structural",
        assume_csc: bool = False,
        map_technology: bool = False,
        verify: bool = False,
        verify_mapped: bool = False,
        library: Optional[str] = None,
        max_markings: Optional[int] = None,
        jobs: Optional[int] = None,
    ) -> list[SynthesisResult]:
        """Synthesize a batch of specs in one ``/synthesize/batch`` request.

        The server feeds the batch straight into its process-pool scheduler
        (``jobs`` caps the pool width; ``None`` leaves it to the server).
        Returns one :class:`SynthesisResult` per spec, in input order.  When
        any item fails, raises :class:`ClientError` naming every failed
        spec — the successes are on the exception as ``.results``.
        """
        body: dict = {
            "items": [
                {
                    "spec": _spec_payload(spec),
                    "level": level,
                    "backend": backend,
                    "assume_csc": assume_csc,
                    "map": map_technology,
                    "verify": verify,
                    "verify_mapped": verify_mapped,
                    "library": library,
                    "max_markings": max_markings,
                }
                for spec in specs
            ],
        }
        if jobs is not None:
            body["jobs"] = jobs
        payload = self._request("POST", "/synthesize/batch", body)
        results: list[Optional[SynthesisResult]] = []
        failures: list[str] = []
        for entry in payload.get("results", []):
            if entry.get("ok"):
                results.append(
                    SynthesisResult(
                        # pool mode has no per-item resolution (the work
                        # happened in a child process) — an empty dict
                        # reads as "nothing known", not "nothing computed"
                        resolution=entry.get("resolution") or {},
                        report=Report.from_json(entry["report"]),
                        raw=entry,
                    )
                )
            else:
                results.append(None)
                detail = entry.get("error", {})
                failures.append(
                    f"{entry.get('spec', '?')}: "
                    f"[{detail.get('code', 'internal')}] {detail.get('message', '')}"
                )
        if failures:
            error = ClientError(
                200,
                f"{len(failures)} of {len(results)} batch item(s) failed: "
                + "; ".join(failures),
                code="batch_partial_failure",
            )
            error.results = results  # type: ignore[attr-defined]
            raise error
        return results  # type: ignore[return-value]

    def verify(
        self,
        spec: SpecLike,
        level: int = 5,
        backend: str = "structural",
        assume_csc: bool = False,
        mapped: bool = False,
        library: Optional[str] = None,
        max_markings: Optional[int] = None,
    ) -> dict:
        return self._request(
            "POST",
            "/verify",
            {
                "spec": _spec_payload(spec),
                "level": level,
                "backend": backend,
                "assume_csc": assume_csc,
                "mapped": mapped,
                "library": library,
                "max_markings": max_markings,
            },
        )

    def compare(
        self,
        spec: SpecLike,
        level: int = 5,
        assume_csc: bool = False,
        max_markings: Optional[int] = None,
    ) -> dict:
        """Differential mode on the server; returns the comparison document."""
        return self._request(
            "POST",
            "/compare",
            {
                "spec": _spec_payload(spec),
                "level": level,
                "assume_csc": assume_csc,
                "max_markings": max_markings,
            },
        )

    def export(
        self,
        spec: SpecLike,
        fmt: str = "verilog",
        level: int = 5,
        assume_csc: bool = False,
        library: Optional[str] = None,
    ) -> str:
        """Map on the server and return the rendered netlist text."""
        payload = self._request(
            "POST",
            "/export",
            {
                "spec": _spec_payload(spec),
                "format": fmt,
                "level": level,
                "assume_csc": assume_csc,
                "library": library,
            },
        )
        return payload["text"]
