"""The staged spec-to-circuit pipeline with per-stage memoisation.

The pipeline decomposes synthesis into five explicit, individually cached
stages::

    analyze  →  refine  →  synthesize  →  map  →  verify

* ``analyze``    — concurrency relation, structural consistency check,
  signal-region approximation, SM-components and SM-cover
  (the shared front-end of the structural flow);
* ``refine``     — cover-function refinement (Section VII) plus the
  structural CSC check;
* ``synthesize`` — circuit generation by a pluggable backend
  (:mod:`repro.api.backends`): the structural engine at one of the
  minimization levels M1..M5, the exhaustive state-based baseline, or the
  exact SAT backend (:mod:`repro.sat`, provably minimum circuits whose
  artifacts carry per-signal minima counts in ``details``);
* ``map``        — technology mapping onto the gate library (Appendix F):
  constructs the typed gate-level netlist (:mod:`repro.gates`);
* ``verify``     — state-based speed-independence verification, with an
  optional ``verify_mapped`` leg that differentially checks the mapped
  netlist's gate-level simulation against the behavioural circuit.

Every stage memoises its artifact keyed on the spec's content hash plus the
options that influence it.  The key design point is that the *analysis* key
does not include the minimization level, so a level sweep (like Fig. 13's
M1..M5) through one pipeline reuses the analysis/refinement front-end
instead of recomputing it per level.  ``Pipeline.stage_calls`` counts actual
computations (cache misses), which the test-suite uses to pin the reuse
behaviour.

The in-memory handles on the artifacts (approximation, circuit) are shared
between cache entries, but never mutated across stages: ``refine`` returns a
*new* approximation object carrying the refined cover functions, so the
cached ``analyze`` artifact keeps the raw approximation regardless of call
order.
"""

from __future__ import annotations

import dataclasses
import os
import time
from collections import Counter
from typing import Optional, Union

from repro.api.artifacts import (
    AnalysisArtifact,
    MappedVerificationArtifact,
    MappingArtifact,
    Report,
    SynthesisArtifact,
    VerificationArtifact,
    RefinementArtifact,
)
from repro.api.events import Event, EventCallback
from repro.api.faults import FaultsLike, get_injector
from repro.api.spec import Spec, SpecLike
from repro.api.store import ArtifactStore, get_store
from repro.obs import ObsLike, activate, get_obs
from repro.gates.library import get_library
from repro.gates.verify import verify_mapped_netlist
from repro.petri.smcover import compute_sm_components, compute_sm_cover
from repro.structural.approximation import approximate_signal_regions
from repro.structural.concurrency import compute_concurrency_relation
from repro.structural.consistency import check_consistency_structural
from repro.structural.csc import check_csc_structural
from repro.structural.refinement import refine_cover_functions
from repro.synthesis.engine import SynthesisError, SynthesisOptions
from repro.synthesis.mapping import GateLibrary, map_circuit
from repro.verify import verify_speed_independence


def _options_key(options: SynthesisOptions) -> tuple:
    """Hashable cache key of the options that influence synthesis."""
    return (
        options.level,
        options.assume_csc,
        options.check_consistency,
        options.use_sufficient_adjacency,
        tuple(options.signals) if options.signals is not None else None,
    )


def _analysis_key(options: SynthesisOptions) -> tuple:
    """The subset of options the analysis front-end depends on (no level)."""
    return (options.check_consistency, options.use_sufficient_adjacency)


def _library_key(library: Optional[GateLibrary]) -> Optional[tuple]:
    """Structural cache key of a gate library (names alone may collide)."""
    if library is None:
        return None
    return (
        library.name,
        library.latch_area,
        library.or2_area,
        library.allow_latch,
        tuple(
            (
                cell.name,
                cell.max_terms,
                cell.max_literals_per_term,
                cell.max_total_literals,
                cell.area,
            )
            for cell in library.cells
        ),
    )


class Pipeline:
    """A caching spec-to-circuit pipeline.

    One pipeline instance owns one in-memory artifact cache; share an
    instance across calls (sweeps, batches, experiments) to reuse the staged
    artifacts.  Create with ``cache=False`` for always-fresh computation.

    ``store`` attaches a durable backing
    (:class:`~repro.api.store.ArtifactStore` instance or a path): stage
    results are then looked up memory → store → compute, and every
    computed artifact is persisted through its lossless ``to_json`` form, so
    results survive the process and are shared between CLI runs, batch
    workers, experiments and the HTTP daemon.  ``store_hits``/
    ``store_misses`` count the disk-level outcomes per stage, alongside the
    ``stage_calls`` computation counters.

    ``on_event`` receives one :class:`~repro.api.events.Event` per stage
    resolution (status ``computed``/``memory``/``store``/``coalesced``).

    ``faults`` activates deterministic fault injection
    (:mod:`repro.api.faults`): an injector instance, a grammar string, or
    ``None`` to consult ``$REPRO_FAULTS``.  When active, the injector is
    shared with the attached store (its read/write/corrupt sites) and the
    stage computations (delay/error sites); when off — the default — the
    hot path pays a single ``is None`` check.

    ``obs`` activates the observability subsystem (:mod:`repro.obs`): an
    :class:`~repro.obs.Obs` bundle, a grammar string, or ``None`` to
    consult ``$REPRO_OBS``.  When active, every *computed* stage runs
    inside a ``stage:<name>`` trace span (nesting under the caller's span,
    e.g. the worker's HTTP span) with wall/CPU timers fed into the
    fleet-aggregatable registry, and the resolution counters are mirrored
    into labelled metric series.  The ad-hoc ``stage_calls``/
    ``store_hits``/... counters stay untouched either way; when off — the
    default — each resolution pays a single ``is None`` check.

    ``flights`` attaches a :class:`~repro.api.fleet.SingleFlight` coalescer
    (requires a store): after a store miss, concurrent requests for the
    same stage key — threads of this process or sibling fleet workers
    sharing the store — elect one *leader* that computes and persists the
    artifact while the others wait on the store entry instead of repeating
    the computation.  A follower that is served this way emits a
    ``coalesced`` stage event and counts in ``coalesced``; if the leader
    dies or the wait deadline passes, the follower degrades to computing
    locally — coalescing is an optimization, never a correctness gate.
    """

    STAGES = ("analyze", "refine", "synthesize", "map", "verify", "verify_mapped")

    def __init__(
        self,
        cache: bool = True,
        store: Union[ArtifactStore, str, os.PathLike, None] = None,
        on_event: Optional[EventCallback] = None,
        faults: FaultsLike = None,
        flights=None,
        obs: ObsLike = None,
    ):
        self._cache: Optional[dict] = {} if cache else None
        self.store: Optional[ArtifactStore] = get_store(store)
        self.on_event = on_event
        self.faults = get_injector(faults)
        if self.faults is not None and self.store is not None and self.store.faults is None:
            self.store.faults = self.faults
        self.flights = flights
        self.obs = get_obs(obs)
        if self.obs is not None and self.store is not None and self.store.obs is None:
            self.store.obs = self.obs
        #: number of actual stage computations (cache misses), per stage
        self.stage_calls: Counter = Counter()
        #: per-stage on-disk store outcomes (only touched when a store is set)
        self.store_hits: Counter = Counter()
        self.store_misses: Counter = Counter()
        #: per-stage computations avoided by waiting on another in-flight
        #: computation of the same key (thread- or fleet-wide)
        self.coalesced: Counter = Counter()

    # ------------------------------------------------------------------ #
    # Cache plumbing
    # ------------------------------------------------------------------ #

    def _emit(self, spec: Spec, stage: str, status: str, seconds: Optional[float] = None):
        if self.on_event is not None:
            self.on_event(
                Event(
                    kind="stage",
                    spec=spec.name,
                    status=status,
                    stage=stage,
                    seconds=seconds,
                )
            )

    def _memo(self, key: tuple, compute, spec: Optional[Spec] = None, artifact_cls=None):
        """Resolve one stage: memory cache → artifact store → computation."""
        stage = key[0]
        if self._cache is not None:
            try:
                value = self._cache[key]
            except KeyError:
                pass
            else:
                if self.obs is not None:
                    self.obs.stage_resolutions.inc(stage=stage, source="memory")
                if spec is not None:
                    self._emit(spec, stage, "memory")
                return value
        if self.store is not None and artifact_cls is not None:
            value = self._from_document(key, self.store.get(key), artifact_cls)
            if value is not None:
                self.store_hits[stage] += 1
                if self.obs is not None:
                    self.obs.stage_resolutions.inc(stage=stage, source="store")
                if spec is not None:
                    self._emit(spec, stage, "store")
                return value
            self.store_misses[stage] += 1
            if self.flights is not None:
                return self._memo_flight(key, compute, spec, artifact_cls)
        return self._compute_entry(key, compute, spec, artifact_cls)

    def _from_document(self, key: tuple, data, artifact_cls):
        """Parse a store document into a cached artifact (``None`` on damage)."""
        if data is None:
            return None
        try:
            value = artifact_cls.from_json(data)
        except (ValueError, KeyError, TypeError):
            # a malformed entry degrades to recomputation
            return None
        if self._cache is not None:
            self._cache[key] = value
        return value

    def _memo_flight(self, key: tuple, compute, spec, artifact_cls):
        """Single-flight resolution of a store miss (fleet-wide coalescing).

        Elect a leader over the store's content address: the leader computes
        and persists as usual; followers wait for the leader's store write
        and parse it instead of repeating the computation.  A follower whose
        leader vanishes (crash, timeout) computes locally — degraded, never
        wrong.
        """
        stage = key[0]
        digest = self.store.digest_of(key)
        if self.flights.acquire(digest):
            try:
                if self.obs is not None:
                    with self.obs.tracer.span("flight:leader", stage=stage):
                        return self._compute_entry(key, compute, spec, artifact_cls)
                return self._compute_entry(key, compute, spec, artifact_cls)
            finally:
                self.flights.release(digest)
        start = time.perf_counter()
        if self.obs is not None:
            with self.obs.tracer.span("flight:wait", stage=stage):
                document = self.flights.wait(digest, lambda: self.store.peek(key))
        else:
            document = self.flights.wait(digest, lambda: self.store.peek(key))
        value = self._from_document(key, document, artifact_cls)
        if value is not None:
            self.coalesced[stage] += 1
            self.store_hits[stage] += 1
            if self.obs is not None:
                self.obs.stage_resolutions.inc(stage=stage, source="coalesced")
            if spec is not None:
                self._emit(spec, stage, "coalesced", seconds=time.perf_counter() - start)
            return value
        return self._compute_entry(key, compute, spec, artifact_cls)

    def _compute_entry(self, key: tuple, compute, spec, artifact_cls):
        """Actually run one stage computation, cache and persist the result."""
        stage = key[0]
        start = time.perf_counter()
        cpu_start = time.process_time()
        if self.faults is not None:
            # injected latency and/or a retryable InjectedStageError —
            # nothing is cached for a failed stage, so a retry recomputes
            self.faults.stage_enter(stage)
        if self.obs is not None:
            # the span nests under the caller's current span (e.g. the
            # worker's HTTP span); `activate` exposes the bundle to layers
            # without an obs parameter, notably the SAT descent
            with self.obs.tracer.span(
                "stage:" + stage, spec=spec.name if spec is not None else ""
            ), activate(self.obs):
                value = compute()
            self.obs.stage_resolutions.inc(stage=stage, source="computed")
            self.obs.stage_seconds.observe(time.perf_counter() - start, stage=stage)
            self.obs.stage_cpu_seconds.observe(
                time.process_time() - cpu_start, stage=stage
            )
        else:
            value = compute()
        if self._cache is not None:
            self._cache[key] = value
        if self.store is not None and artifact_cls is not None:
            try:
                self.store.put(
                    key,
                    value.to_json(),
                    stage=stage,
                    spec_name=spec.name if spec is not None else "",
                    spec_hash=spec.content_hash if spec is not None else "",
                )
            except OSError:
                pass  # an unwritable store must never fail the computation
        if spec is not None:
            self._emit(spec, stage, "computed", seconds=time.perf_counter() - start)
        return value

    def cache_info(self) -> dict:
        """Cached artifact count per stage (for introspection and tests)."""
        if self._cache is None:
            return {}
        counts: Counter = Counter(key[0] for key in self._cache)
        return dict(counts)

    def store_info(self) -> dict:
        """On-disk store statistics plus this pipeline's hit/miss counters."""
        if self.store is None:
            return {}
        info = self.store.stats()
        info["pipeline"] = {
            "stage_calls": dict(self.stage_calls),
            "store_hits": dict(self.store_hits),
            "store_misses": dict(self.store_misses),
        }
        return info

    def evict_cache(self) -> int:
        """Drop the in-memory artifacts only; counters and store survive.

        With a store attached this is cheap insurance for long-lived
        processes (the daemon): evicted artifacts reload from disk on the
        next request instead of recomputing.  Returns the number of entries
        dropped.
        """
        if self._cache is None:
            return 0
        dropped = len(self._cache)
        self._cache.clear()
        return dropped

    def clear_cache(self) -> None:
        """Drop the in-memory cache and counters (the store is untouched)."""
        if self._cache is not None:
            self._cache.clear()
        self.stage_calls.clear()
        self.store_hits.clear()
        self.store_misses.clear()
        self.coalesced.clear()

    # ------------------------------------------------------------------ #
    # Stage: analyze
    # ------------------------------------------------------------------ #

    def analyze(
        self,
        spec: SpecLike,
        options: Optional[SynthesisOptions] = None,
    ) -> AnalysisArtifact:
        """Run the shared structural analysis front-end."""
        spec = Spec.load(spec)
        options = options or SynthesisOptions()
        key = ("analyze", spec.content_hash, _analysis_key(options))

        def compute() -> AnalysisArtifact:
            self.stage_calls["analyze"] += 1
            start = time.perf_counter()
            stg = spec.stg
            concurrency = compute_concurrency_relation(stg)
            consistent = True
            if options.check_consistency:
                report = check_consistency_structural(
                    stg,
                    concurrency,
                    use_sufficient_conditions=options.use_sufficient_adjacency,
                )
                consistent = report.consistent
                if not consistent:
                    raise SynthesisError(
                        "the STG is not consistent: "
                        f"autoconcurrent={report.autoconcurrent_transitions}, "
                        f"switchover={report.switchover_violations}"
                    )
            approximation = approximate_signal_regions(stg, concurrency)
            components = compute_sm_components(stg.net)
            try:
                sm_cover = compute_sm_cover(stg.net, components)
            except ValueError as error:
                raise SynthesisError(f"no SM-cover found: {error}") from error
            return AnalysisArtifact(
                spec_name=spec.name,
                spec_hash=spec.content_hash,
                places=stg.net.num_places(),
                transitions=stg.net.num_transitions(),
                signals=list(stg.signal_names),
                non_input_signals=list(stg.non_input_signals),
                consistent=consistent,
                sm_components=len(components),
                sm_cover_size=len(sm_cover),
                seconds=time.perf_counter() - start,
                approximation=approximation,
                concurrency=concurrency,
                sm_cover=sm_cover,
            )

        return self._memo(key, compute, spec=spec, artifact_cls=AnalysisArtifact)

    # ------------------------------------------------------------------ #
    # Stage: refine
    # ------------------------------------------------------------------ #

    def refine(
        self,
        spec: SpecLike,
        options: Optional[SynthesisOptions] = None,
    ) -> RefinementArtifact:
        """Refine the cover functions and run the structural CSC check."""
        spec = Spec.load(spec)
        options = options or SynthesisOptions()
        analysis = self.analyze(spec, options)
        key = ("refine", spec.content_hash, _analysis_key(options))

        def compute() -> RefinementArtifact:
            self.stage_calls["refine"] += 1
            start = time.perf_counter()
            stg = spec.stg
            # a store-loaded analysis artifact rebuilds its handles here
            analysis.ensure_handles(stg)
            refinement = refine_cover_functions(
                stg,
                analysis.approximation.cover_functions,
                analysis.sm_cover,
                analysis.concurrency,
            )
            # a new approximation object: the cached analysis artifact keeps
            # the raw cover functions (reassignment also drops the region
            # cache the new object must not share)
            approximation = dataclasses.replace(
                analysis.approximation, cover_functions=refinement.cover_functions
            )
            csc = check_csc_structural(stg, approximation.cover_functions, analysis.sm_cover)
            cubes = sum(len(cover) for cover in approximation.cover_functions.values())
            return RefinementArtifact(
                spec_name=spec.name,
                spec_hash=spec.content_hash,
                conflicts_before=len(refinement.eliminated_conflicts)
                + len(refinement.remaining_conflicts),
                conflicts_after=len(refinement.remaining_conflicts),
                csc_certified=csc.satisfied,
                unresolved_places=sorted(csc.unresolved_places),
                cubes=cubes,
                seconds=time.perf_counter() - start,
                approximation=approximation,
                analysis=analysis,
            )

        refinement = self._memo(key, compute, spec=spec, artifact_cls=RefinementArtifact)
        if refinement.analysis is None:
            # the serialized refine document does not nest the analysis
            # (it has its own store entry); link the one resolved above
            refinement.analysis = analysis
        return refinement

    # ------------------------------------------------------------------ #
    # Stage: synthesize
    # ------------------------------------------------------------------ #

    def synthesize(
        self,
        spec: SpecLike,
        options: Optional[SynthesisOptions] = None,
        backend: Union[str, "object"] = "structural",
        max_markings: Optional[int] = None,
    ) -> SynthesisArtifact:
        """Generate the circuit with the requested backend."""
        from repro.api.backends import get_backend

        spec = Spec.load(spec)
        options = options or SynthesisOptions()
        backend = get_backend(backend)
        if backend.name == "structural":
            # the structural flow never enumerates the state space: keep the
            # bound out of the key so bounded/unbounded calls share the cache
            max_markings = None
        key = (
            "synthesize",
            spec.content_hash,
            backend.name,
            _options_key(options),
            max_markings,
        )

        def compute() -> SynthesisArtifact:
            self.stage_calls["synthesize"] += 1
            return backend.synthesize(self, spec, options, max_markings=max_markings)

        return self._memo(key, compute, spec=spec, artifact_cls=SynthesisArtifact)

    # ------------------------------------------------------------------ #
    # Stage: map
    # ------------------------------------------------------------------ #

    def map(
        self,
        spec: SpecLike,
        options: Optional[SynthesisOptions] = None,
        backend: Union[str, "object"] = "structural",
        library: Union[GateLibrary, str, None] = None,
        max_markings: Optional[int] = None,
    ) -> MappingArtifact:
        """Map the synthesized circuit onto the gate library.

        ``library`` accepts a :class:`GateLibrary`, a built-in name
        (``generic-cmos``, ``two-input-only``, ``latch-free``) or a path to
        a library JSON file.  The artifact carries the constructed
        :class:`~repro.gates.ir.GateNetlist`.
        """
        spec = Spec.load(spec)
        options = options or SynthesisOptions()
        library = get_library(library) if library is not None else None
        synthesis = self.synthesize(spec, options, backend=backend, max_markings=max_markings)
        if synthesis.backend == "structural":
            max_markings = None
        key = (
            "map",
            spec.content_hash,
            synthesis.backend,
            _options_key(options),
            max_markings,
            _library_key(library),
        )

        def compute() -> MappingArtifact:
            self.stage_calls["map"] += 1
            start = time.perf_counter()
            mapped = map_circuit(synthesis.circuit, library)
            netlist = mapped.netlist
            return MappingArtifact(
                spec_name=spec.name,
                spec_hash=spec.content_hash,
                total_area=mapped.total_area,
                per_signal_area=dict(mapped.per_signal_area),
                cells_used={s: list(c) for s, c in mapped.cells_used.items()},
                seconds=time.perf_counter() - start,
                library=mapped.library.name,
                gate_count=netlist.num_gates(),
                net_count=netlist.num_nets(),
                latch_count=netlist.num_latches(),
                mapped=mapped,
                netlist=netlist,
            )

        return self._memo(key, compute, spec=spec, artifact_cls=MappingArtifact)

    # ------------------------------------------------------------------ #
    # Stage: verify
    # ------------------------------------------------------------------ #

    def verify(
        self,
        spec: SpecLike,
        options: Optional[SynthesisOptions] = None,
        backend: Union[str, "object"] = "structural",
        max_markings: Optional[int] = None,
    ) -> VerificationArtifact:
        """Verify the synthesized circuit to be speed independent."""
        spec = Spec.load(spec)
        options = options or SynthesisOptions()
        synthesis = self.synthesize(spec, options, backend=backend, max_markings=max_markings)
        if synthesis.backend == "structural":
            max_markings = None
        key = (
            "verify",
            spec.content_hash,
            synthesis.backend,
            _options_key(options),
            max_markings,
        )

        def compute() -> VerificationArtifact:
            self.stage_calls["verify"] += 1
            start = time.perf_counter()
            report = verify_speed_independence(spec.stg, synthesis.circuit)
            return VerificationArtifact(
                spec_name=spec.name,
                spec_hash=spec.content_hash,
                speed_independent=report.speed_independent,
                checked_markings=report.checked_markings,
                functional_errors=list(report.functional_errors),
                hazard_errors=list(report.hazard_errors),
                seconds=time.perf_counter() - start,
            )

        return self._memo(key, compute, spec=spec, artifact_cls=VerificationArtifact)

    # ------------------------------------------------------------------ #
    # Stage: verify_mapped
    # ------------------------------------------------------------------ #

    def verify_mapped(
        self,
        spec: SpecLike,
        options: Optional[SynthesisOptions] = None,
        backend: Union[str, "object"] = "structural",
        library: Union[GateLibrary, str, None] = None,
        max_markings: Optional[int] = None,
    ) -> MappedVerificationArtifact:
        """Differentially verify the mapped netlist against the behaviour.

        The gate-level event simulation of the ``map`` stage's netlist is
        compared with ``Circuit.next_values`` over every distinct reachable
        state code of the specification.
        """
        spec = Spec.load(spec)
        options = options or SynthesisOptions()
        library = get_library(library) if library is not None else None
        synthesis = self.synthesize(spec, options, backend=backend, max_markings=max_markings)
        mapping = self.map(
            spec, options, backend=backend, library=library, max_markings=max_markings
        )
        # unlike `verify`, the bound stays in the key even for the structural
        # backend: the differential check itself enumerates the state space,
        # so a bounded and an unbounded call are different computations
        state_bound = max_markings
        key = (
            "verify_mapped",
            spec.content_hash,
            synthesis.backend,
            _options_key(options),
            state_bound,
            _library_key(library),
        )

        def compute() -> MappedVerificationArtifact:
            self.stage_calls["verify_mapped"] += 1
            start = time.perf_counter()
            report = verify_mapped_netlist(
                spec.stg,
                synthesis.circuit,
                mapping.netlist,
                max_markings=state_bound,
            )
            elapsed = time.perf_counter() - start
            if self.obs is not None and elapsed > 0:
                # kernel throughput: distinct state codes differentially
                # simulated per second by the gate-level check
                self.obs.kernel_codes_per_second.set(report.checked_codes / elapsed)
            return MappedVerificationArtifact(
                spec_name=spec.name,
                spec_hash=spec.content_hash,
                equivalent=report.equivalent,
                checked_codes=report.checked_codes,
                checked_markings=report.checked_markings,
                gate_count=mapping.gate_count,
                library=mapping.library,
                mismatches=list(report.mismatches),
                seconds=time.perf_counter() - start,
            )

        return self._memo(
            key, compute, spec=spec, artifact_cls=MappedVerificationArtifact
        )

    # ------------------------------------------------------------------ #
    # Full run
    # ------------------------------------------------------------------ #

    def run(
        self,
        spec: SpecLike,
        options: Optional[SynthesisOptions] = None,
        backend: Union[str, "object"] = "structural",
        map_technology: bool = False,
        verify: bool = False,
        verify_mapped: bool = False,
        library: Union[GateLibrary, str, None] = None,
        max_markings: Optional[int] = None,
    ) -> Report:
        """Run the full pipeline and return a typed :class:`Report`.

        ``verify_mapped`` adds the gate-level differential leg of the verify
        stage (and implies ``map_technology``); ``library`` selects the gate
        library for both the ``map`` and ``verify_mapped`` stages.
        """
        spec = Spec.load(spec)
        options = options or SynthesisOptions()
        synthesis = self.synthesize(spec, options, backend=backend, max_markings=max_markings)
        analysis = refinement = None
        if synthesis.backend == "structural":
            # reuse the exact front-end artifacts the circuit was built from
            # (avoids recomputation when the cache is disabled)
            refinement = synthesis.refinement
            if refinement is None:
                refinement = self.refine(spec, options)
            analysis = refinement.analysis
            if analysis is None:
                analysis = self.analyze(spec, options)
        mapping = None
        if map_technology or verify_mapped:
            mapping = self.map(
                spec, options, backend=backend, library=library, max_markings=max_markings
            )
        verification = None
        if verify:
            verification = self.verify(spec, options, backend=backend, max_markings=max_markings)
        mapped_verification = None
        if verify_mapped:
            mapped_verification = self.verify_mapped(
                spec, options, backend=backend, library=library, max_markings=max_markings
            )
        return Report(
            spec_name=spec.name,
            spec_hash=spec.content_hash,
            backend=synthesis.backend,
            level=options.level,
            synthesis=synthesis,
            analysis=analysis,
            refinement=refinement,
            mapping=mapping,
            verification=verification,
            mapped_verification=mapped_verification,
        )
