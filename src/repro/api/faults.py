"""Deterministic, seedable fault injection for the execution layers.

The paper's circuits stay correct under *arbitrary gate delays*; this module
gives the serving stack the analogous discipline under arbitrary process, IO
and load faults — and makes the hardening *provable* rather than hoped-for.
A :class:`FaultInjector` holds a set of :class:`FaultRule`\\ s, each naming
one injection point (a *site*), and every hardened layer asks the injector
before the guarded operation:

=================  =====================================================
site               effect when the rule fires
=================  =====================================================
``store.read``     :class:`InjectedIOError` while reading a store entry
                   (the store must degrade to a miss, never an error)
``store.write``    :class:`InjectedIOError` while persisting an entry
                   (the pipeline must keep the computed result)
``store.corrupt``  the entry is written *truncated* — a later reader must
                   quarantine it and recompute
``stage.error``    the pipeline stage raises :class:`InjectedStageError`
                   (a retryable :class:`TransientError`)
``stage.delay``    the stage sleeps ``~seconds`` before computing
``worker.kill``    the process-pool worker exits hard (``os._exit``),
                   breaking the pool mid-batch
=================  =====================================================

Activation is explicit — ``Pipeline(faults=...)``, ``Scheduler(faults=...)``
or the ``$REPRO_FAULTS`` environment variable — and **zero overhead when
off**: the hardened code paths hold ``None`` and perform a single attribute
check.

Grammar
-------

A fault spec is a ``;``-separated list of clauses::

    seed=7 ; site[@scope] = rate [xLIMIT] [~SECONDS]

* ``rate``    — probability per opportunity (``1`` fires always);
* ``@scope``  — restricts the rule to one stage name (``stage.*`` sites), one
  spec name (``worker.kill`` in the scheduler pool), or one endpoint name
  (``worker.kill`` in the serving fleet, e.g. ``@synthesize``);
* ``xLIMIT``  — budget: at most ``LIMIT`` firings (for token-driven sites
  such as ``worker.kill``, fire only while the attempt number is ≤ LIMIT);
* ``~SECONDS`` — the injected latency (``stage.delay`` only).

Example: ``seed=7;worker.kill@sequencer=1x1;stage.error@synthesize=0.5;``
``stage.delay@analyze=1x2~0.05;store.read=0.25``.

Determinism
-----------

Every decision is a pure function of ``(seed, site, scope, token)`` hashed
through SHA-256 — no wall clock, no global RNG.  Within one process the
token defaults to a per-rule opportunity counter, so a fixed seed replays an
identical fault schedule.  Across process boundaries (pool workers) the
caller *binds* an explicit token — the job's attempt number — so decisions
like "kill the worker on attempt 1, spare attempt 2" hold no matter which
worker process executes which attempt.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Optional, Union

#: Environment variable activating fault injection process-wide (workers
#: inherit it, so a chaos run covers both sides of the pool boundary).
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: The injection points the execution layers expose.
FAULT_SITES = (
    "store.read",
    "store.write",
    "store.corrupt",
    "stage.error",
    "stage.delay",
    "worker.kill",
    # corpus.flip: the differential check suite corrupts the mapped netlist
    # (one SOP term polarity) before verification — a *planted* regression
    # the fuzzing farm must catch, shrink and quarantine.
    "corpus.flip",
)


class InjectedFault(Exception):
    """Marker base of every artificially injected failure."""


class TransientError(RuntimeError):
    """A retryable failure: the operation may succeed if repeated.

    The scheduler's :class:`~repro.api.scheduler.RetryPolicy` classifies
    subclasses (and ``OSError``/``TimeoutError``) as retryable; raise it
    from custom stages to opt into retries.
    """


class InjectedIOError(InjectedFault, OSError):
    """An injected store IO failure (reads degrade to misses, writes drop)."""


class InjectedStageError(InjectedFault, TransientError):
    """An injected (retryable) stage computation failure."""


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: *where* to fire, *how often*, and *how hard*."""

    site: str
    scope: Optional[str] = None  # stage / spec name; None matches everything
    rate: float = 1.0  # firing probability per opportunity
    limit: Optional[int] = None  # budget (max firings / max attempt token)
    seconds: float = 0.0  # injected latency (stage.delay)

    def __post_init__(self):
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r} (available: {', '.join(FAULT_SITES)})"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")

    def to_text(self) -> str:
        clause = self.site
        if self.scope is not None:
            clause += f"@{self.scope}"
        clause += f"={self.rate:g}"
        if self.limit is not None:
            clause += f"x{self.limit}"
        if self.seconds:
            clause += f"~{self.seconds:g}"
        return clause


def _parse_clause(clause: str) -> FaultRule:
    if "=" not in clause:
        raise ValueError(f"malformed fault clause {clause!r} (expected site=rate)")
    head, _, trigger = clause.partition("=")
    site, _, scope = head.strip().partition("@")
    scope = scope.strip() or None
    trigger = trigger.strip()
    seconds = 0.0
    if "~" in trigger:
        trigger, _, tail = trigger.partition("~")
        seconds = float(tail)
    limit: Optional[int] = None
    if "x" in trigger:
        trigger, _, tail = trigger.partition("x")
        limit = int(tail)
    rate = float(trigger) if trigger else 1.0
    return FaultRule(site=site.strip(), scope=scope, rate=rate, limit=limit, seconds=seconds)


class FaultInjector:
    """A deterministic fault schedule over a set of :class:`FaultRule`\\ s.

    ``token`` (when bound or passed to :meth:`fire`) replaces the per-rule
    opportunity counter, making decisions reproducible across processes.
    """

    def __init__(
        self, rules, seed: int = 0, token: Optional[int] = None, salt: str = ""
    ):
        self.rules = tuple(rules)
        self.seed = seed
        self.token = token
        #: extra hash material (e.g. the spec hash) diversifying token-mode
        #: decisions across jobs that share the same attempt number
        self.salt = salt
        #: per-rule opportunity counters (used when no token is bound)
        self._opportunities: dict[int, int] = {}
        #: per-rule firing counts (observability; budget for counter mode)
        self.fired: dict[str, int] = {}
        self._fired_by_rule: dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Construction / transport
    # ------------------------------------------------------------------ #

    @classmethod
    def parse(cls, text: str, token: Optional[int] = None) -> "FaultInjector":
        """Build an injector from the ``$REPRO_FAULTS`` grammar."""
        seed = 0
        rules = []
        for clause in text.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                seed = int(clause[5:])
                continue
            rules.append(_parse_clause(clause))
        return cls(rules, seed=seed, token=token)

    def to_text(self) -> str:
        """The grammar form (crosses process boundaries losslessly)."""
        clauses = [f"seed={self.seed}"]
        clauses.extend(rule.to_text() for rule in self.rules)
        return ";".join(clauses)

    def bind(self, token: int, salt: str = "") -> "FaultInjector":
        """A fresh injector whose decisions are keyed on ``token``."""
        return FaultInjector(self.rules, seed=self.seed, token=token, salt=salt)

    def scoped(self, salt: str) -> "FaultInjector":
        """A fresh *counter-mode* injector diversified by ``salt``.

        Fleet workers use this with their ``worker<slot>g<generation>``
        identity: every incarnation replays its own deterministic schedule
        from the shared seed, but a respawned worker does not repeat its
        predecessor's decisions — a ``worker.kill`` rule would otherwise
        kill every generation at the same opportunity, forever.
        """
        return FaultInjector(self.rules, seed=self.seed, token=self.token, salt=salt)

    # ------------------------------------------------------------------ #
    # Decisions
    # ------------------------------------------------------------------ #

    def _chance(self, rule: FaultRule, token: int) -> float:
        text = f"{self.seed}|{self.salt}|{rule.site}|{rule.scope or ''}|{token}"
        digest = hashlib.sha256(text.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def fire(
        self, site: str, scope: Optional[str] = None, token: Optional[int] = None
    ) -> Optional[FaultRule]:
        """The matching rule if this opportunity fires, else ``None``."""
        if token is None:
            token = self.token
        for index, rule in enumerate(self.rules):
            if rule.site != site:
                continue
            if rule.scope is not None and rule.scope != scope:
                continue
            if token is None:
                # counter mode: the budget caps total firings in-process
                if rule.limit is not None and self._fired_by_rule.get(index, 0) >= rule.limit:
                    continue
                opportunity = self._opportunities.get(index, 0) + 1
                self._opportunities[index] = opportunity
                decision_token = opportunity
            else:
                # token mode: the budget caps the attempt number that fires
                if rule.limit is not None and token > rule.limit:
                    continue
                decision_token = token
            if rule.rate < 1.0 and self._chance(rule, decision_token) >= rule.rate:
                continue
            self.fired[site] = self.fired.get(site, 0) + 1
            self._fired_by_rule[index] = self._fired_by_rule.get(index, 0) + 1
            return rule
        return None

    # ------------------------------------------------------------------ #
    # Hook helpers (one per hardened layer)
    # ------------------------------------------------------------------ #

    def raise_io(self, site: str, scope: Optional[str] = None) -> None:
        """Raise :class:`InjectedIOError` when a ``store.*`` rule fires."""
        if self.fire(site, scope) is not None:
            raise InjectedIOError(f"injected {site} fault" + (f" ({scope})" if scope else ""))

    def corrupts_write(self, scope: Optional[str] = None) -> bool:
        """True when this write should land truncated on disk."""
        return self.fire("store.corrupt", scope) is not None

    def stage_enter(self, stage: str) -> None:
        """Apply ``stage.delay`` then ``stage.error`` for one stage compute."""
        rule = self.fire("stage.delay", stage)
        if rule is not None and rule.seconds > 0:
            time.sleep(rule.seconds)
        if self.fire("stage.error", stage) is not None:
            raise InjectedStageError(f"injected stage fault in {stage!r}")

    def kill_worker(self, scope: Optional[str] = None, attempt: Optional[int] = None) -> None:
        """Hard-exit the current process when a ``worker.kill`` rule fires."""
        if self.fire("worker.kill", scope, token=attempt) is not None:
            os._exit(13)

    def __repr__(self) -> str:
        return f"FaultInjector({self.to_text()!r})"


FaultsLike = Union[FaultInjector, str, None]


def get_injector(faults: FaultsLike = None) -> Optional[FaultInjector]:
    """Resolve a faults argument: injector, grammar text, or ``$REPRO_FAULTS``.

    ``None`` consults the environment so a chaos run can wrap any entry
    point (CLI, server, pool workers) without plumbing; unset means *no
    injection* — the hardened layers then skip the hooks entirely.
    """
    if isinstance(faults, FaultInjector):
        return faults
    if faults is not None:
        return FaultInjector.parse(faults)
    env = os.environ.get(FAULTS_ENV_VAR)
    if env:
        return FaultInjector.parse(env)
    return None
