"""Plain-text table rendering and machine-readable perf records shared by
all experiment modules."""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from pathlib import Path


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {column: len(str(column)) for column in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column], len(_fmt(row.get(column, ""))))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("  ".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append(
            "  ".join(_fmt(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def write_perf_record(path: str | Path, record: Mapping[str, object]) -> Path:
    """Write a machine-readable perf record (JSON) for trajectory tracking.

    The benchmark harness collects per-case timings into a nested dict and
    persists them (``BENCH_PR<n>.json`` at the repo root) so later PRs can
    compare against earlier kernels without re-running the old code.
    """
    path = Path(path)
    path.write_text(json.dumps(record, indent=2, sort_keys=False, default=str) + "\n")
    return path
