"""Plain-text table rendering shared by all experiment modules."""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {column: len(str(column)) for column in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column], len(_fmt(row.get(column, ""))))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("  ".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append(
            "  ".join(_fmt(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
