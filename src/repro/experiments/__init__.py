"""Reproduction harness for the tables and figures of the paper.

Each module regenerates one experiment of Section IX:

* :mod:`fig13`  — average area across the minimization levels M1..M5 + TM;
* :mod:`table5` — per-benchmark area, structural flow vs. the state-based
  baseline (standing in for SYN / FORCAGE);
* :mod:`table6` — CPU time, structural vs. state-based, on STGs with large
  reachability graphs (standing in for SIS / ASSASSIN);
* :mod:`table7` — CPU time on the scalable examples (dining philosophers,
  Muller pipelines);
* :mod:`table8` — markings / nodes / cubes trade-off of the cube
  approximations.

Every experiment runs on top of the unified :mod:`repro.api` pipeline (the
structural levels of one benchmark share the cached ``analyze``/``refine``
front-end) and returns a list of row dictionaries that can render as an
aligned text table via :mod:`reporting`, so the pytest-benchmark harness
under ``benchmarks/``, the examples, and ``python -m repro bench`` all share
the same code.
"""

from repro.experiments.reporting import format_table

__all__ = ["format_table"]
