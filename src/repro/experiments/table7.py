"""Table VII — CPU time on the scalable examples.

The paper reports synthesis times for growing dining-philosophers (a
non-free-choice, SM-coverable net) and Muller-pipeline instances.  The
reproduction sweeps both families through the unified API and reports the
structural synthesis time and the circuit size; the state-based baseline
time is included while the state space stays enumerable, to show the
cross-over.
"""

from __future__ import annotations

from repro.api.events import Event
from repro.api.pipeline import Pipeline
from repro.api.spec import Spec
from repro.benchmarks import scalable
from repro.petri.reachability import StateSpaceLimitExceeded
from repro.synthesis import SynthesisOptions

DEFAULT_PHILOSOPHERS = (3, 5, 8, 12)
DEFAULT_PIPELINES = (4, 8, 16, 32)
BASELINE_MARKING_LIMIT = 100_000


def table7_rows(
    philosophers=DEFAULT_PHILOSOPHERS,
    pipelines=DEFAULT_PIPELINES,
    baseline_limit: int = BASELINE_MARKING_LIMIT,
    on_event=None,
) -> list[dict]:
    """Rows for both scalable families.

    ``on_event`` receives one ``job`` progress event per case plus the
    pipeline's ``stage`` events (no store: the timings are the product).
    """
    rows: list[dict] = []
    cases = [
        (f"philosophers_{n}", lambda n=n: scalable.dining_philosophers(n))
        for n in philosophers
    ] + [
        (f"muller_pipeline_{n}", lambda n=n: scalable.muller_pipeline(n))
        for n in pipelines
    ]
    for index, (name, builder) in enumerate(cases):
        if on_event is not None:
            on_event(Event(kind="job", spec=name, status="start",
                           index=index + 1, total=len(cases)))
        spec = Spec.from_stg(builder(), name=name)
        pipeline = Pipeline(on_event=on_event)
        structural = pipeline.run(spec, SynthesisOptions(level=3, assume_csc=True))
        try:
            baseline = pipeline.run(
                spec,
                SynthesisOptions(level=3),
                backend="statebased",
                max_markings=baseline_limit,
            )
            baseline_seconds: float | str = round(baseline.total_seconds, 3)
            markings: int | str = baseline.synthesis.markings
        except StateSpaceLimitExceeded:
            baseline_seconds = "blow-up"
            markings = f">{baseline_limit}"
        rows.append(
            {
                "benchmark": name,
                "P": spec.stg.net.num_places(),
                "T": spec.stg.net.num_transitions(),
                "markings": markings,
                "structural_s": round(structural.total_seconds, 3),
                "statebased_s": baseline_seconds,
                "structural_lits": structural.literals,
            }
        )
        if on_event is not None:
            on_event(Event(kind="job", spec=name, status="done",
                           index=index + 1, total=len(cases),
                           seconds=structural.total_seconds))
    return rows
