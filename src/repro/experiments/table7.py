"""Table VII — CPU time on the scalable examples.

The paper reports synthesis times for growing dining-philosophers (a
non-free-choice, SM-coverable net) and Muller-pipeline instances.  The
reproduction sweeps both families and reports the structural synthesis time
and the circuit size; the state-based baseline time is included while the
state space stays enumerable, to show the cross-over.
"""

from __future__ import annotations

import time

from repro.benchmarks import scalable
from repro.petri.reachability import StateSpaceLimitExceeded
from repro.statebased.synthesis import synthesize_state_based
from repro.synthesis import SynthesisOptions, synthesize

DEFAULT_PHILOSOPHERS = (3, 5, 8, 12)
DEFAULT_PIPELINES = (4, 8, 16, 32)
BASELINE_MARKING_LIMIT = 100_000


def table7_rows(
    philosophers=DEFAULT_PHILOSOPHERS,
    pipelines=DEFAULT_PIPELINES,
    baseline_limit: int = BASELINE_MARKING_LIMIT,
) -> list[dict]:
    """Rows for both scalable families."""
    rows: list[dict] = []
    cases = [
        (f"philosophers_{n}", lambda n=n: scalable.dining_philosophers(n))
        for n in philosophers
    ] + [
        (f"muller_pipeline_{n}", lambda n=n: scalable.muller_pipeline(n))
        for n in pipelines
    ]
    for name, builder in cases:
        stg = builder()
        start = time.perf_counter()
        structural = synthesize(stg, SynthesisOptions(level=3, assume_csc=True))
        structural_seconds = time.perf_counter() - start
        start = time.perf_counter()
        try:
            baseline = synthesize_state_based(stg, max_markings=baseline_limit)
            baseline_seconds: float | str = round(time.perf_counter() - start, 3)
            markings: int | str = baseline.statistics["markings"]
        except StateSpaceLimitExceeded:
            baseline_seconds = "blow-up"
            markings = f">{baseline_limit}"
        rows.append(
            {
                "benchmark": name,
                "P": stg.net.num_places(),
                "T": stg.net.num_transitions(),
                "markings": markings,
                "structural_s": round(structural_seconds, 3),
                "statebased_s": baseline_seconds,
                "structural_lits": structural.circuit.literal_count(),
            }
        )
    return rows
