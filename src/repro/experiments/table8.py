"""Table VIII — trade-offs among markings, STG nodes, and approximation cubes.

The paper reports, separately for STGs with fewer and with more than 10^6
markings, the total number of reachable markings, STG nodes, and cubes used
by the structural approximations, plus the cubes/node and markings/cube
ratios that justify the cube-approximation approach.
"""

from __future__ import annotations

from repro.benchmarks import scalable
from repro.benchmarks.classic import classic_names, load_classic
from repro.benchmarks.figures import fig1_stg, fig7_glatch_stg
from repro.petri.reachability import StateSpaceLimitExceeded, count_reachable_markings
from repro.synthesis import SynthesisOptions
from repro.synthesis.engine import prepare_approximation

#: marking-count threshold separating the "small" and "large" groups
LARGE_THRESHOLD = 10_000


def _benchmark_set() -> list[tuple[str, object, int | None]]:
    """(name, stg, closed-form markings or None) for the analyzed set."""
    items: list[tuple[str, object, int | None]] = []
    for name in classic_names(synthesizable_only=True):
        items.append((name, load_classic(name), None))
    items.append(("fig1", fig1_stg(), None))
    items.append(("glatch_8", fig7_glatch_stg(8), None))
    items.append(("muller_pipeline_16", scalable.muller_pipeline(16), None))
    items.append(("independent_cells_12", scalable.independent_cells(12), 4 ** 12))
    items.append(("independent_cells_30", scalable.independent_cells(30), 4 ** 30))
    items.append(("independent_cells_45", scalable.independent_cells(45), 4 ** 45))
    return items


def table8_rows(enumeration_limit: int = 300_000) -> list[dict]:
    """Per-benchmark counts plus the two aggregated groups of Table VIII."""
    per_benchmark: list[dict] = []
    for name, stg, closed_form in _benchmark_set():
        if closed_form is not None:
            markings: int | None = closed_form
        else:
            try:
                markings = count_reachable_markings(
                    stg.net, max_markings=enumeration_limit
                )
            except StateSpaceLimitExceeded:
                markings = None
        approximation, stats = prepare_approximation(
            stg, SynthesisOptions(assume_csc=True)
        )
        nodes = stg.net.num_places() + stg.net.num_transitions()
        cubes = sum(len(cover) for cover in approximation.cover_functions.values())
        per_benchmark.append(
            {
                "benchmark": name,
                "markings": markings if markings is not None else f">{enumeration_limit}",
                "nodes": nodes,
                "cubes": cubes,
                "cubes_per_node": round(cubes / nodes, 2),
                "markings_per_cube": (
                    round(markings / cubes, 2) if isinstance(markings, int) else "huge"
                ),
                "_markings_numeric": markings if isinstance(markings, int) else None,
            }
        )

    def aggregate(group: list[dict], label: str) -> dict:
        nodes = sum(r["nodes"] for r in group)
        cubes = sum(r["cubes"] for r in group)
        markings = sum(
            r["_markings_numeric"] for r in group if r["_markings_numeric"] is not None
        )
        return {
            "benchmark": label,
            "markings": markings,
            "nodes": nodes,
            "cubes": cubes,
            "cubes_per_node": round(cubes / nodes, 2) if nodes else 0,
            "markings_per_cube": round(markings / cubes, 2) if cubes else 0,
        }

    small = [
        r for r in per_benchmark
        if r["_markings_numeric"] is not None and r["_markings_numeric"] <= LARGE_THRESHOLD
    ]
    large = [
        r for r in per_benchmark
        if r["_markings_numeric"] is None or r["_markings_numeric"] > LARGE_THRESHOLD
    ]
    rows = [dict(r) for r in per_benchmark]
    for row in rows:
        row.pop("_markings_numeric", None)
    if small:
        rows.append(aggregate(small, "SMALL (<=10k markings)"))
    if large:
        numeric_large = [r for r in large if r["_markings_numeric"] is not None]
        if numeric_large:
            rows.append(aggregate(numeric_large, "LARGE (>10k markings, enumerable)"))
    return rows
