"""Table VIII — trade-offs among markings, STG nodes, and approximation cubes.

The paper reports, separately for STGs with fewer and with more than 10^6
markings, the total number of reachable markings, STG nodes, and cubes used
by the structural approximations, plus the cubes/node and markings/cube
ratios that justify the cube-approximation approach.  The cube counts come
from the ``analyze``/``refine`` stages of the unified pipeline; the
``gates`` column reports the size of the mapped gate-level netlist (the
``map`` stage), showing that the gate graph stays proportional to the cube
approximation rather than to the marking count.
"""

from __future__ import annotations

from repro.api.pipeline import Pipeline
from repro.api.spec import Spec
from repro.benchmarks import scalable
from repro.benchmarks.classic import classic_names
from repro.benchmarks.figures import fig1_stg, fig7_glatch_stg
from repro.petri.reachability import StateSpaceLimitExceeded, count_reachable_markings
from repro.synthesis.engine import SynthesisError, SynthesisOptions

#: marking-count threshold separating the "small" and "large" groups
LARGE_THRESHOLD = 10_000


def _benchmark_set() -> list[tuple[Spec, int | None]]:
    """(spec, closed-form markings or None) for the analyzed set."""
    items: list[tuple[Spec, int | None]] = []
    for name in classic_names(synthesizable_only=True):
        items.append((Spec.from_benchmark(name), None))
    items.append((Spec.from_stg(fig1_stg(), name="fig1"), None))
    items.append((Spec.from_stg(fig7_glatch_stg(8), name="glatch_8"), None))
    items.append(
        (Spec.from_stg(scalable.muller_pipeline(16), name="muller_pipeline_16"), None)
    )
    items.append(
        (
            Spec.from_stg(scalable.independent_cells(12), name="independent_cells_12"),
            4 ** 12,
        )
    )
    items.append(
        (
            Spec.from_stg(scalable.independent_cells(30), name="independent_cells_30"),
            4 ** 30,
        )
    )
    items.append(
        (
            Spec.from_stg(scalable.independent_cells(45), name="independent_cells_45"),
            4 ** 45,
        )
    )
    return items


def table8_rows(
    enumeration_limit: int = 300_000,
    store=None,
    on_event=None,
) -> list[dict]:
    """Per-benchmark counts plus the two aggregated groups of Table VIII.

    ``store``/``on_event`` attach a durable store and the structured event
    stream (the counted quantities are timing-independent).
    """
    pipeline = Pipeline(store=store, on_event=on_event)
    per_benchmark: list[dict] = []
    for spec, closed_form in _benchmark_set():
        if closed_form is not None:
            markings: int | None = closed_form
        else:
            try:
                markings = count_reachable_markings(
                    spec.stg.net, max_markings=enumeration_limit
                )
            except StateSpaceLimitExceeded:
                markings = None
        analysis = pipeline.analyze(spec)
        refinement = pipeline.refine(spec)
        nodes = analysis.places + analysis.transitions
        cubes = refinement.cubes
        try:
            mapping = pipeline.map(
                spec, SynthesisOptions(level=3, assume_csc=True)
            )
            gates: int | str = mapping.gate_count
        except SynthesisError:
            gates = "-"
        per_benchmark.append(
            {
                "benchmark": spec.name,
                "markings": markings if markings is not None else f">{enumeration_limit}",
                "nodes": nodes,
                "cubes": cubes,
                "gates": gates,
                "cubes_per_node": round(cubes / nodes, 2),
                "markings_per_cube": (
                    round(markings / cubes, 2) if isinstance(markings, int) else "huge"
                ),
                "_markings_numeric": markings if isinstance(markings, int) else None,
            }
        )

    def aggregate(group: list[dict], label: str) -> dict:
        nodes = sum(r["nodes"] for r in group)
        cubes = sum(r["cubes"] for r in group)
        gates = sum(r["gates"] for r in group if isinstance(r["gates"], int))
        markings = sum(
            r["_markings_numeric"] for r in group if r["_markings_numeric"] is not None
        )
        return {
            "benchmark": label,
            "markings": markings,
            "nodes": nodes,
            "cubes": cubes,
            "gates": gates,
            "cubes_per_node": round(cubes / nodes, 2) if nodes else 0,
            "markings_per_cube": round(markings / cubes, 2) if cubes else 0,
        }

    small = [
        r for r in per_benchmark
        if r["_markings_numeric"] is not None and r["_markings_numeric"] <= LARGE_THRESHOLD
    ]
    large = [
        r for r in per_benchmark
        if r["_markings_numeric"] is None or r["_markings_numeric"] > LARGE_THRESHOLD
    ]
    rows = [dict(r) for r in per_benchmark]
    for row in rows:
        row.pop("_markings_numeric", None)
    if small:
        rows.append(aggregate(small, "SMALL (<=10k markings)"))
    if large:
        numeric_large = [r for r in large if r["_markings_numeric"] is not None]
        if numeric_large:
            rows.append(aggregate(numeric_large, "LARGE (>10k markings, enumerable)"))
    return rows
