"""Optimality gap — structural approximation vs provable SAT minima.

The paper's structural flow trades exactness for scalability; this
experiment measures what the trade costs.  For every registry spec the
exact backend (:mod:`repro.sat`) synthesizes the provably minimum-literal
circuit and is differentially cross-checked against **both** existing
backends on every reachable code; the table then reports the literal
counts side by side with the gap.

``exact ≤ structural`` and ``exact ≤ statebased`` must hold on every row:
the heuristic covers are feasible points of the exact search space, so a
violation is a synthesis bug, not a gap (the ``sound`` column pins this —
the tier-1 suite and the CI sat-smoke step assert it).

Each spec runs as one :class:`~repro.api.scheduler.Scheduler` job with a
per-job deadline — SAT descent is the first genuinely open-ended work in
the batch system, so specs that blow their ``timeout`` or their candidate
budget degrade to a ``skipped`` row instead of stalling the table.
"""

from __future__ import annotations

from typing import Optional

from repro.api.scheduler import Job, Scheduler
from repro.api.spec import Spec
from repro.benchmarks.classic import classic_names
from repro.synthesis import SynthesisOptions

#: the 13-spec gap registry: every synthesizable classic benchmark plus
#: the paper's figures and the smallest scalable instance
GAP_SPECS: tuple[str, ...] = tuple(classic_names(synthesizable_only=True)) + (
    "fig1",
    "fig6",
    "glatch_3",
    "muller_pipeline_2",
)


def run_gap_job(job: Job, pipeline, faults) -> dict:
    """Scheduler runner: one gap row for one spec.

    Synthesizes with all three backends through the (memoising) pipeline,
    cross-checks the exact circuit against both baselines via
    :func:`repro.api.backends.compare`, and returns the row as plain data.
    Budget exhaustion is reported as a ``skipped`` row; anything else
    propagates into the scheduler's retry/error machinery.
    """
    from repro.api.backends import compare
    from repro.sat.encode import SatBudgetExceeded

    spec = job.spec
    options = job.options
    stg = spec.stg
    row: dict = {
        "spec": spec.name,
        "signals": len(stg.non_input_signals),
        "status": "ok",
    }
    structural = pipeline.synthesize(
        spec, options, backend="structural", max_markings=job.max_markings
    )
    statebased = pipeline.synthesize(
        spec, options, backend="statebased", max_markings=job.max_markings
    )
    row["markings"] = statebased.markings
    row["structural_lits"] = structural.literals
    row["statebased_lits"] = statebased.literals
    try:
        exact = pipeline.synthesize(
            spec, options, backend="sat", max_markings=job.max_markings
        )
    except SatBudgetExceeded as error:
        row["status"] = "skipped"
        row["detail"] = str(error)
        row["exact_lits"] = None
        row["gap_lits"] = None
        row["minima"] = None
        row["sound"] = None
        row["matching"] = None
        return row
    row["exact_lits"] = exact.literals
    row["gap_lits"] = structural.literals - exact.literals
    minima = (exact.details or {}).get("minima", {})
    count = 1
    for per_signal in minima.values():
        count *= max(1, per_signal)
    row["minima"] = count
    row["sound"] = (
        exact.literals <= structural.literals
        and exact.literals <= statebased.literals
    )
    matching = True
    for pair in (("structural", "sat"), ("statebased", "sat")):
        report = compare(
            spec,
            options,
            pipeline=pipeline,
            max_markings=job.max_markings,
            backends=pair,
        )
        matching = matching and report.matching
    row["matching"] = matching
    row["seconds"] = round(exact.seconds, 6)
    return row


def gap_rows(
    names: Optional[list[str]] = None,
    level: int = 5,
    pipeline=None,
    store=None,
    on_event=None,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    max_markings: Optional[int] = None,
) -> list[dict]:
    """One gap row per spec plus a TOTAL row, in registry order.

    ``jobs``/``timeout`` feed the scheduler (parallel fan-out and per-job
    deadlines); a job that times out or errors after retries becomes an
    ``error`` row rather than aborting the batch.
    """
    if names is None:
        names = list(GAP_SPECS)
    options = SynthesisOptions(level=level, assume_csc=True)
    job_list = [
        Job(
            spec=Spec.from_benchmark(name),
            options=options,
            max_markings=max_markings,
            timeout=timeout,
            runner="repro.experiments.optimality_gap:run_gap_job",
        )
        for name in names
    ]
    scheduler = Scheduler(
        jobs=jobs,
        store=store,
        on_event=on_event,
        pipeline=pipeline,
        timeout=timeout,
    )
    by_index: dict[int, dict] = {}
    for result in scheduler.iter_results(job_list):
        if result.report is not None:
            by_index[result.index] = result.report
        else:
            by_index[result.index] = {
                "spec": result.job.spec.name,
                "status": "error",
                "detail": str(result.error),
                "structural_lits": None,
                "statebased_lits": None,
                "exact_lits": None,
                "gap_lits": None,
                "minima": None,
                "sound": None,
                "matching": None,
            }
    rows = [by_index[i] for i in range(len(job_list))]
    solved = [r for r in rows if r["status"] == "ok"]
    rows.append(
        {
            "spec": "TOTAL",
            "status": f"{len(solved)}/{len(rows)} ok",
            "structural_lits": sum(r["structural_lits"] or 0 for r in rows),
            "statebased_lits": sum(r["statebased_lits"] or 0 for r in rows),
            "exact_lits": sum(r["exact_lits"] or 0 for r in solved),
            "gap_lits": sum(r["gap_lits"] or 0 for r in solved),
            "minima": sum(r["minima"] or 0 for r in solved),
            "sound": all(r["sound"] for r in solved) if solved else None,
            "matching": all(r["matching"] for r in solved) if solved else None,
        }
    )
    return rows
