"""Table VI — CPU time, structural vs. state-based, on large-RG STGs.

The paper synthesizes STGs whose reachability graphs have from thousands to
10^27 markings and compares its CPU time against SIS and ASSASSIN (which
either time out or blow up).  The reproduction uses arrays of independent
handshake cells (4^n markings) and wide Muller pipelines, runs both backends
through the unified API, and reports the state-based baseline only while the
state space remains enumerable (past the cut-off it is reported as
"blow-up" — the same way the paper reports the tools that could not
complete).  Each case uses a fresh pipeline so the structural timing includes
the full analyze → refine → synthesize chain.
"""

from __future__ import annotations

from repro.api.events import Event
from repro.api.pipeline import Pipeline
from repro.api.spec import Spec
from repro.benchmarks import scalable
from repro.petri.reachability import StateSpaceLimitExceeded
from repro.synthesis import SynthesisOptions

#: (name, constructor, closed-form marking count or None)
DEFAULT_CASES = [
    ("independent_cells_5", lambda: scalable.independent_cells(5), 4 ** 5),
    ("independent_cells_8", lambda: scalable.independent_cells(8), 4 ** 8),
    ("independent_cells_12", lambda: scalable.independent_cells(12), 4 ** 12),
    ("independent_cells_20", lambda: scalable.independent_cells(20), 4 ** 20),
    ("independent_cells_45", lambda: scalable.independent_cells(45), 4 ** 45),
    ("muller_pipeline_8", lambda: scalable.muller_pipeline(8), None),
    ("muller_pipeline_16", lambda: scalable.muller_pipeline(16), None),
    ("muller_pipeline_32", lambda: scalable.muller_pipeline(32), None),
]

#: State spaces above this size are not enumerated by the baseline.
BASELINE_MARKING_LIMIT = 200_000


def table6_rows(
    cases=None,
    baseline_limit: int = BASELINE_MARKING_LIMIT,
    on_event=None,
) -> list[dict]:
    """One row per scalable benchmark with both flows' run times.

    ``on_event`` receives structured progress events (one ``job`` record per
    case plus the per-stage pipeline events) — the callback API replacing
    print-based progress.  No store is attached: the timing columns are the
    product here, so every case must actually compute.
    """
    if cases is None:
        cases = DEFAULT_CASES
    rows: list[dict] = []
    for index, (name, builder, markings) in enumerate(cases):
        if on_event is not None:
            on_event(Event(kind="job", spec=name, status="start",
                           index=index + 1, total=len(cases)))
        spec = Spec.from_stg(builder(), name=name)
        pipeline = Pipeline(on_event=on_event)
        structural = pipeline.run(spec, SynthesisOptions(level=3, assume_csc=True))

        baseline_seconds: float | str
        baseline_markings: int | str
        try:
            baseline = pipeline.run(
                spec,
                SynthesisOptions(level=3),
                backend="statebased",
                max_markings=baseline_limit,
            )
            baseline_seconds = round(baseline.total_seconds, 3)
            baseline_markings = baseline.synthesis.markings
        except StateSpaceLimitExceeded:
            baseline_seconds = "blow-up"
            baseline_markings = f">{baseline_limit}"
        rows.append(
            {
                "benchmark": name,
                "P": spec.stg.net.num_places(),
                "T": spec.stg.net.num_transitions(),
                "markings": markings if markings is not None else baseline_markings,
                "structural_s": round(structural.total_seconds, 3),
                "statebased_s": baseline_seconds,
                "structural_lits": structural.literals,
            }
        )
        if on_event is not None:
            on_event(Event(kind="job", spec=name, status="done",
                           index=index + 1, total=len(cases),
                           seconds=structural.total_seconds))
    return rows
