"""Fig. 13 — average area improvement across the minimization levels.

The paper plots, for two benchmark sets, the average area of the circuits as
the minimization steps M1 (per-excitation-region covers) through M5 (backward
expansion) and finally technology mapping (TM) are enabled.  The reproduction
sweeps the same levels through one cached :class:`repro.api.Pipeline`: the
``analyze``/``refine`` front-end is computed once per benchmark and reused by
every level (the sweep only re-runs the ``synthesize`` stage), then reports
average literal counts and mapped areas (normalized to the M1 point, as the
paper normalizes to the initial semi-optimized circuit).
"""

from __future__ import annotations

from typing import Optional

from repro.api.pipeline import Pipeline
from repro.api.spec import Spec
from repro.benchmarks.classic import classic_names
from repro.synthesis import SynthesisOptions

#: The minimization points of Fig. 13 (technology mapping is applied on top
#: of the strongest level).
LEVELS: tuple[str, ...] = ("M1", "M2", "M3", "M4", "M5", "TM")


def fig13_per_benchmark(
    names: Optional[list[str]] = None,
    pipeline: Optional[Pipeline] = None,
    store=None,
    on_event=None,
) -> dict[str, dict[str, dict]]:
    """Literals and area per benchmark and level, via the cached pipeline.

    Returns ``{benchmark: {level: {"literals": int, "area": int}}}``; the
    test-suite uses the per-benchmark breakdown to pin the monotonicity of
    the level sweep.  ``store`` attaches a durable artifact store and
    ``on_event`` the structured event stream.
    """
    if names is None:
        names = classic_names(synthesizable_only=True)
    if pipeline is None:
        pipeline = Pipeline(store=store, on_event=on_event)
    results: dict[str, dict[str, dict]] = {}
    for name in names:
        spec = Spec.from_benchmark(name)
        per_level: dict[str, dict] = {}
        for index, level in enumerate(LEVELS, start=1):
            numeric_level = min(index, 5)
            options = SynthesisOptions(level=numeric_level, assume_csc=True)
            synthesis = pipeline.synthesize(spec, options)
            if level == "TM":
                area = pipeline.map(spec, options).total_area
            else:
                area = synthesis.transistors
            per_level[level] = {"literals": synthesis.literals, "area": area}
        results[name] = per_level
    return results


def fig13_rows(
    names: Optional[list[str]] = None,
    pipeline: Optional[Pipeline] = None,
    store=None,
    on_event=None,
) -> list[dict]:
    """Average area per minimization level over the benchmark set."""
    per_benchmark = fig13_per_benchmark(names, pipeline, store=store, on_event=on_event)
    rows: list[dict] = []
    baseline = None
    for level in LEVELS:
        literals = [cells[level]["literals"] for cells in per_benchmark.values()]
        areas = [cells[level]["area"] for cells in per_benchmark.values()]
        avg_literals = sum(literals) / len(literals)
        avg_area = sum(areas) / len(areas)
        if baseline is None:
            baseline = avg_area
        rows.append(
            {
                "level": level,
                "avg_literals": round(avg_literals, 2),
                "avg_area": round(avg_area, 2),
                "normalized_area": round(avg_area / baseline, 3) if baseline else 1.0,
                "benchmarks": len(literals),
            }
        )
    return rows
