"""Fig. 13 — average area improvement across the minimization levels.

The paper plots, for two benchmark sets, the average area of the circuits as
the minimization steps M1 (per-excitation-region covers) through M5 (backward
expansion) and finally technology mapping (TM) are enabled.  The reproduction
sweeps the same levels of the structural engine over the classic benchmark
suite and reports average literal counts and mapped areas (normalized to the
M1 point, as the paper normalizes to the initial semi-optimized circuit).
"""

from __future__ import annotations

from repro.benchmarks.classic import classic_names, load_classic
from repro.synthesis import SynthesisOptions, map_circuit, synthesize
from repro.synthesis.engine import prepare_approximation

#: The minimization points of Fig. 13 (technology mapping is applied on top
#: of the strongest level).
LEVELS: tuple[str, ...] = ("M1", "M2", "M3", "M4", "M5", "TM")


def fig13_rows(names: list[str] | None = None) -> list[dict]:
    """Average area per minimization level over the benchmark set."""
    if names is None:
        names = classic_names(synthesizable_only=True)
    per_level_literals: dict[str, list[int]] = {level: [] for level in LEVELS}
    per_level_area: dict[str, list[int]] = {level: [] for level in LEVELS}
    for name in names:
        stg = load_classic(name)
        approximation, _ = prepare_approximation(stg, SynthesisOptions(assume_csc=True))
        for index, level in enumerate(LEVELS, start=1):
            numeric_level = min(index, 5)
            options = SynthesisOptions(level=numeric_level, assume_csc=True)
            result = synthesize(stg, options, approximation=approximation)
            literals = result.circuit.literal_count()
            if level == "TM":
                area = map_circuit(result.circuit).total_area
            else:
                area = result.circuit.transistor_estimate()
            per_level_literals[level].append(literals)
            per_level_area[level].append(area)

    rows: list[dict] = []
    baseline = None
    for level in LEVELS:
        literals = per_level_literals[level]
        areas = per_level_area[level]
        avg_literals = sum(literals) / len(literals)
        avg_area = sum(areas) / len(areas)
        if baseline is None:
            baseline = avg_area
        rows.append(
            {
                "level": level,
                "avg_literals": round(avg_literals, 2),
                "avg_area": round(avg_area, 2),
                "normalized_area": round(avg_area / baseline, 3) if baseline else 1.0,
                "benchmarks": len(literals),
            }
        )
    return rows
