"""Table V — per-benchmark area comparison.

The paper compares the area of its circuits (S3C, with and without backward
expansion / mapping) against SYN and FORCAGE.  Those tools are not available,
so the reproduction compares:

* ``base``   — the state-based exhaustive baseline (plays the role of the
  prior state-based tools),
* ``s3c``    — the structural flow without backward expansion (level 3),
* ``s3c_full`` — the fully minimized structural flow (level 5) plus
  technology mapping.

Areas are reported in literals and mapped (normalized transistor) units, and
every synthesized circuit is re-verified to be speed independent.
"""

from __future__ import annotations

from repro.benchmarks.classic import classic_names, load_classic
from repro.petri.reachability import build_reachability_graph
from repro.statebased.synthesis import synthesize_state_based
from repro.synthesis import SynthesisOptions, map_circuit, synthesize
from repro.verify import verify_speed_independence


def table5_rows(names: list[str] | None = None, verify: bool = True) -> list[dict]:
    """One row per benchmark: sizes and areas of the three flows."""
    if names is None:
        names = classic_names(synthesizable_only=True)
    rows: list[dict] = []
    for name in names:
        stg = load_classic(name)
        graph = build_reachability_graph(stg.net)
        baseline = synthesize_state_based(stg)
        partial = synthesize(stg, SynthesisOptions(level=3, assume_csc=True))
        full = synthesize(stg, SynthesisOptions(level=5, assume_csc=True))
        mapped = map_circuit(full.circuit)
        row = {
            "benchmark": name,
            "P": stg.net.num_places(),
            "T": stg.net.num_transitions(),
            "M": len(graph),
            "base_lits": baseline.circuit.literal_count(),
            "s3c_lits": partial.circuit.literal_count(),
            "s3c_full_lits": full.circuit.literal_count(),
            "s3c_mapped_area": mapped.total_area,
        }
        if verify:
            row["base_SI"] = bool(verify_speed_independence(stg, baseline.circuit))
            row["s3c_SI"] = bool(verify_speed_independence(stg, full.circuit))
        rows.append(row)
    totals = {
        "benchmark": "TOTAL",
        "P": sum(r["P"] for r in rows),
        "T": sum(r["T"] for r in rows),
        "M": sum(r["M"] for r in rows),
        "base_lits": sum(r["base_lits"] for r in rows),
        "s3c_lits": sum(r["s3c_lits"] for r in rows),
        "s3c_full_lits": sum(r["s3c_full_lits"] for r in rows),
        "s3c_mapped_area": sum(r["s3c_mapped_area"] for r in rows),
    }
    if verify:
        totals["base_SI"] = all(r["base_SI"] for r in rows)
        totals["s3c_SI"] = all(r["s3c_SI"] for r in rows)
    rows.append(totals)
    return rows
