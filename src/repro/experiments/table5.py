"""Table V — per-benchmark area comparison.

The paper compares the area of its circuits (S3C, with and without backward
expansion / mapping) against SYN and FORCAGE.  Those tools are not available,
so the reproduction compares:

* ``base``   — the state-based exhaustive baseline (plays the role of the
  prior state-based tools),
* ``s3c``    — the structural flow without backward expansion (level 3),
* ``s3c_full`` — the fully minimized structural flow (level 5) plus
  technology mapping.

All flows run through one cached :class:`repro.api.Pipeline` (the structural
levels share the analysis front-end; the state-based run contributes the
marking count).  Areas are reported in literals and mapped (normalized
transistor) units, and every synthesized circuit is re-verified to be speed
independent.
"""

from __future__ import annotations

from typing import Optional

from repro.api.pipeline import Pipeline
from repro.api.spec import Spec
from repro.benchmarks.classic import classic_names
from repro.synthesis import SynthesisOptions


def table5_rows(
    names: Optional[list[str]] = None,
    verify: bool = True,
    pipeline: Optional[Pipeline] = None,
    store=None,
    on_event=None,
) -> list[dict]:
    """One row per benchmark: sizes and areas of the three flows.

    ``store`` attaches a durable artifact store (areas are the product here,
    not timings, so warm runs are sound); ``on_event`` receives the
    pipeline's structured stage events.
    """
    if names is None:
        names = classic_names(synthesizable_only=True)
    if pipeline is None:
        pipeline = Pipeline(store=store, on_event=on_event)
    rows: list[dict] = []
    base_options = SynthesisOptions(level=5)
    partial_options = SynthesisOptions(level=3, assume_csc=True)
    full_options = SynthesisOptions(level=5, assume_csc=True)
    for name in names:
        spec = Spec.from_benchmark(name)
        baseline = pipeline.synthesize(spec, base_options, backend="statebased")
        partial = pipeline.synthesize(spec, partial_options)
        full = pipeline.synthesize(spec, full_options)
        mapped = pipeline.map(spec, full_options)
        stg = spec.stg
        row = {
            "benchmark": name,
            "P": stg.net.num_places(),
            "T": stg.net.num_transitions(),
            "M": baseline.markings,
            "base_lits": baseline.literals,
            "s3c_lits": partial.literals,
            "s3c_full_lits": full.literals,
            "s3c_mapped_area": mapped.total_area,
        }
        if verify:
            row["base_SI"] = bool(
                pipeline.verify(spec, base_options, backend="statebased")
            )
            row["s3c_SI"] = bool(pipeline.verify(spec, full_options))
        rows.append(row)
    totals = {
        "benchmark": "TOTAL",
        "P": sum(r["P"] for r in rows),
        "T": sum(r["T"] for r in rows),
        "M": sum(r["M"] for r in rows),
        "base_lits": sum(r["base_lits"] for r in rows),
        "s3c_lits": sum(r["s3c_lits"] for r in rows),
        "s3c_full_lits": sum(r["s3c_full_lits"] for r in rows),
        "s3c_mapped_area": sum(r["s3c_mapped_area"] for r in rows),
    }
    if verify:
        totals["base_SI"] = all(r["base_SI"] for r in rows)
        totals["s3c_SI"] = all(r["s3c_SI"] for r in rows)
    rows.append(totals)
    return rows
