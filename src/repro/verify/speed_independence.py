"""State-based speed-independence verification of a synthesized circuit.

The check follows the theory of Section III: a circuit in the
complex-gate-per-excitation-function architecture is speed independent iff
its set and reset covers are *correct* (equation (2)) and *monotonic*
(Property 1).  Rather than re-checking cover inclusions symbolically, the
verifier walks every reachable marking of the specification and compares the
circuit's behaviour with the implied next-state value, then checks
monotonicity of the covers over the exact quiescent regions.  This is
exhaustive and independent of how the circuit was obtained, so it validates
the structural flow end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.statebased.nextstate import implied_value_bitsets
from repro.statebased.regions import SignalRegions, compute_signal_regions
from repro.stg.encoding import encode_reachability_graph
from repro.stg.stg import STG
from repro.synthesis.conditions import check_monotonicity_state_based
from repro.synthesis.netlist import Circuit


@dataclass
class VerificationReport:
    """Outcome of the speed-independence verification."""

    speed_independent: bool
    functional_errors: list[str] = field(default_factory=list)
    hazard_errors: list[str] = field(default_factory=list)
    checked_markings: int = 0
    checked_signals: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.speed_independent


def verify_speed_independence(
    stg: STG,
    circuit: Circuit,
    regions: Optional[SignalRegions] = None,
    signals: Optional[list[str]] = None,
) -> VerificationReport:
    """Verify that ``circuit`` implements ``stg`` without hazards.

    Functional correctness: at every reachable marking, every implemented
    signal's next value (with C-latch hold semantics, evaluated on the
    marking's binary code) must equal the specification's implied value —
    1 inside GER+ ∪ GQR1, 0 inside GER- ∪ GQR0 (markings with no implied
    value only occur for inconsistent specifications).

    Hazard freeness: the set and reset covers of every latch-based signal
    must be monotonic over the exact quiescent regions (Property 1); for
    combinational implementations monotonicity reduces to functional
    correctness, which was already checked.
    """
    targets = signals if signals is not None else [
        s for s in circuit.signals if s in stg.non_input_signals
    ]
    if regions is None:
        encoded = encode_reachability_graph(stg)
        regions = compute_signal_regions(stg, encoded, signals=targets)
    encoded = regions.encoded

    functional: list[str] = []
    hazards: list[str] = []

    # Per-signal implied-value bitsets and a per-distinct-code evaluation
    # cache: the circuit is evaluated once per (signal, code) instead of
    # once per (signal, marking).
    on_bits, off_bits = implied_value_bitsets(regions, targets)
    packed = encoded.packed_codes
    value_cache: dict[tuple[str, int], int] = {}
    for index in range(len(packed)):
        code_int = packed[index]
        state_bit = 1 << index
        for signal in targets:
            if on_bits[signal] & state_bit:
                implied = 1
            elif off_bits[signal] & state_bit:
                implied = 0
            else:
                continue
            key = (signal, code_int)
            actual = value_cache.get(key)
            if actual is None:
                actual = circuit.next_value(
                    signal, encoded.code_dict_of_int(code_int)
                )
                value_cache[key] = actual
            if actual != implied:
                marking = encoded.marking_list[index]
                functional.append(
                    f"signal {signal}: circuit produces {actual}, specification "
                    f"implies {implied} at marking {marking} (code "
                    f"{encoded.code_string(marking)})"
                )

    for signal in targets:
        implementation = circuit[signal]
        if not implementation.uses_latch:
            continue
        set_report = check_monotonicity_state_based(
            stg, regions, signal, implementation.set_cover, "+"
        )
        if not set_report:
            hazards.extend(set_report.violations)
        reset_report = check_monotonicity_state_based(
            stg, regions, signal, implementation.reset_cover, "-"
        )
        if not reset_report:
            hazards.extend(reset_report.violations)

    return VerificationReport(
        speed_independent=not functional and not hazards,
        functional_errors=functional,
        hazard_errors=hazards,
        checked_markings=len(encoded),
        checked_signals=list(targets),
    )
