"""Verification of synthesized circuits against their STG specification.

The paper reports that "all synthesis results have been formally verified to
be speed independent" (Section IX) with a BDD-based model checker.  This
package provides the equivalent safety net for the reproduction: a
state-based verifier that walks the encoded reachability graph of the
specification and checks, for every reachable marking, that

* the circuit's next value of every output signal equals the value implied
  by the specification's next-state function (functional correctness,
  equation (1)/(2) with C-latch hold semantics), and
* the set and reset covers are monotonic (Property 1), which together with
  correctness guarantees speed independence for the chosen architectures.
"""

from repro.verify.speed_independence import VerificationReport, verify_speed_independence

__all__ = ["VerificationReport", "verify_speed_independence"]
