"""Structured distributed tracing for the repro serving stack.

Answers "where did this request's 40 ms go?" across process boundaries:
a :class:`Tracer` keeps a per-thread stack of open :class:`Span`\\ s, so
nesting is automatic inside one process, and a :class:`SpanContext`
(trace id + span id) rides the ``X-Repro-Trace`` HTTP header from
:class:`repro.api.client.Client` into a fleet worker, and the
``Job.payload`` dict into a scheduler pool process.  Each process appends
finished spans as JSON lines to its own sink file in the fleet
``run_dir`` (``trace-<service>.jsonl``); :func:`load_trace` stitches the
files back together by trace id and :func:`render_trace` draws the tree:

.. code-block:: text

    trace 91c2f0e2a6d14c3b  (2 services, 6 spans, 41.3 ms)
    └─ client:POST /synthesize  41.3 ms  [client]
       └─ http:/synthesize  39.8 ms  [worker0.1]
          ├─ flight:leader (synthesize)  22.4 ms
          │  └─ stage:synthesize  22.1 ms
          └─ stage:verify  8.0 ms

Writes are line-buffered appends under a lock — crash-safe in the same
sense as the heartbeat files: a dying worker loses at most its open spans.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

#: The propagation header: ``<trace_id>:<span_id>`` (hex, colon-separated).
TRACE_HEADER = "X-Repro-Trace"


def _new_id(nbytes: int = 8) -> str:
    return os.urandom(nbytes).hex()


@dataclass(frozen=True)
class SpanContext:
    """The portable part of a span: what a child in another process needs."""

    trace_id: str
    span_id: str

    def to_header(self) -> str:
        return f"{self.trace_id}:{self.span_id}"


def parse_header(text: Optional[str]) -> Optional[SpanContext]:
    """Decode an ``X-Repro-Trace`` value; anything malformed is ignored."""
    if not text or not isinstance(text, str):
        return None
    trace_id, sep, span_id = text.strip().partition(":")
    if not sep or not trace_id or not span_id:
        return None
    if not all(c in "0123456789abcdef" for c in trace_id + span_id):
        return None
    return SpanContext(trace_id=trace_id, span_id=span_id)


class Span:
    """One timed operation; measures wall *and* CPU time (the paper's unit)."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "service",
        "attrs",
        "status",
        "start",
        "_perf_start",
        "_cpu_start",
        "seconds",
        "cpu_seconds",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        parent_id: Optional[str],
        service: str,
        attrs: Optional[dict] = None,
    ):
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.name = name
        self.service = service
        self.attrs = dict(attrs or {})
        self.status = "ok"
        self.start = time.time()
        self._perf_start = time.perf_counter()
        self._cpu_start = time.process_time()
        self.seconds = 0.0
        self.cpu_seconds = 0.0

    @property
    def context(self) -> SpanContext:
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    def set(self, key: str, value) -> None:
        self.attrs[key] = value

    def finish(self) -> dict:
        self.seconds = time.perf_counter() - self._perf_start
        self.cpu_seconds = time.process_time() - self._cpu_start
        return {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "service": self.service,
            "pid": os.getpid(),
            "start": round(self.start, 6),
            "seconds": round(self.seconds, 6),
            "cpu_seconds": round(self.cpu_seconds, 6),
            "status": self.status,
            "attrs": self.attrs,
        }


class Tracer:
    """Per-process span factory with a thread-local stack for auto-nesting."""

    def __init__(self, sink: Union[str, os.PathLike, None] = None, service: str = ""):
        self.sink = Path(sink) if sink is not None else None
        self.service = service
        self.emitted = 0
        self._lock = threading.Lock()
        self._local = threading.local()
        # the append handle is opened lazily and kept for the tracer's
        # lifetime: one open() per span would dominate the per-request cost
        self._handle = None
        self._handle_pid = None

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Optional[SpanContext]:
        """The context of this thread's innermost open span, if any."""
        stack = self._stack()
        return stack[-1].context if stack else None

    @contextmanager
    def span(self, name: str, parent: Optional[SpanContext] = None, **attrs):
        """Open a span; nests under the thread's current span by default.

        An explicit ``parent`` (typically decoded from ``X-Repro-Trace``)
        adopts that remote context — same trace id, remote span as parent —
        which is how a worker's spans stitch under the client's.
        """
        if parent is None:
            parent = self.current()
        if parent is not None:
            span = Span(name, parent.trace_id, parent.span_id, self.service, attrs)
        else:
            span = Span(name, _new_id(), None, self.service, attrs)
        stack = self._stack()
        stack.append(span)
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            stack.pop()
            self._emit(span.finish())

    def _emit(self, record: dict) -> None:
        self.emitted += 1
        if self.sink is None:
            return
        line = json.dumps(record, separators=(",", ":"), default=str)
        try:
            with self._lock:
                # a forked child (scheduler pool, prefork worker) must not
                # share the parent's file position — reopen under its own pid
                if self._handle is None or self._handle_pid != os.getpid():
                    self._handle = open(self.sink, "a", encoding="utf-8")
                    self._handle_pid = os.getpid()
                self._handle.write(line + "\n")
                self._handle.flush()
        except OSError:
            pass  # tracing must never take down the traced operation

    def close(self) -> None:
        """Release the sink handle (safe to call repeatedly; reopens on use)."""
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None
                self._handle_pid = None


# ---------------------------------------------------------------------- #
# Stitching: per-process sinks -> one tree per trace id
# ---------------------------------------------------------------------- #


def load_records(
    directory: Union[str, os.PathLike], pattern: str = "trace-*.jsonl"
) -> list[dict]:
    """Every readable span record from every sink in a run directory."""
    records = []
    for path in sorted(Path(directory).glob(pattern)):
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # a torn final line from a killed worker
            if isinstance(record, dict) and record.get("trace"):
                records.append(record)
    return records


def load_trace(directory: Union[str, os.PathLike], trace_id: str) -> list[dict]:
    """All spans of one trace, stitched across every per-process sink."""
    return [r for r in load_records(directory) if r["trace"] == trace_id]


def list_traces(directory: Union[str, os.PathLike]) -> list[dict]:
    """Summaries of every trace in a run directory, newest first."""
    traces: dict = {}
    for record in load_records(directory):
        entry = traces.setdefault(
            record["trace"],
            {"trace": record["trace"], "spans": 0, "services": set(), "start": None, "root": None},
        )
        entry["spans"] += 1
        entry["services"].add(record.get("service", ""))
        start = record.get("start")
        if start is not None and (entry["start"] is None or start < entry["start"]):
            entry["start"] = start
        if record.get("parent") is None:
            entry["root"] = record.get("name")
    out = []
    for entry in traces.values():
        entry["services"] = sorted(entry["services"])
        out.append(entry)
    out.sort(key=lambda e: e["start"] or 0.0, reverse=True)
    return out


def span_tree(records: list[dict]) -> list[dict]:
    """Group one trace's records into root nodes ``{record, children}``.

    A span whose parent never reached a sink (e.g. the parent process was
    SIGKILLed mid-request) is promoted to a root rather than dropped — the
    partial trace still renders.
    """
    nodes = {r["span"]: {"record": r, "children": []} for r in records}
    roots = []
    for node in nodes.values():
        parent_id = node["record"].get("parent")
        parent = nodes.get(parent_id) if parent_id else None
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    def sort_children(node):
        node["children"].sort(key=lambda n: n["record"].get("start", 0.0))
        for child in node["children"]:
            sort_children(child)
    roots.sort(key=lambda n: n["record"].get("start", 0.0))
    for root in roots:
        sort_children(root)
    return roots


def render_trace(records: list[dict]) -> str:
    """A human span tree with wall timings and the owning service."""
    if not records:
        return "(no spans)"
    trace_id = records[0]["trace"]
    services = sorted({r.get("service", "") for r in records})
    roots = span_tree(records)
    total = max(r.get("seconds", 0.0) for r in records)
    lines = [
        f"trace {trace_id}  ({len(services)} service(s), {len(records)} spans, "
        f"{total * 1000:.1f} ms)"
    ]

    def visit(node, prefix: str, is_last: bool) -> None:
        record = node["record"]
        connector = "└─ " if is_last else "├─ "
        marker = "" if record.get("status") == "ok" else f"  !{record.get('status')}"
        service = record.get("service") or f"pid{record.get('pid', '?')}"
        lines.append(
            f"{prefix}{connector}{record['name']}  "
            f"{record.get('seconds', 0.0) * 1000:.1f} ms  [{service}]{marker}"
        )
        child_prefix = prefix + ("   " if is_last else "│  ")
        children = node["children"]
        for index, child in enumerate(children):
            visit(child, child_prefix, index == len(children) - 1)

    for index, root in enumerate(roots):
        visit(root, "", index == len(roots) - 1)
    return "\n".join(lines)
