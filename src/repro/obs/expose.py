"""Exposition and cross-process aggregation of metric snapshots.

:mod:`repro.obs.metrics` owns the in-process instruments; this module owns
everything that leaves the process:

* :func:`load_snapshots` / :func:`merge_snapshots` — the supervisor-side
  aggregation of per-worker ``metrics-*.json`` files.  Because every
  histogram shares the fixed :data:`~repro.obs.metrics.DEFAULT_BUCKETS`
  boundaries, the merge is an elementwise sum — exact, not approximate.
* :func:`render_prometheus` — the text exposition format (v0.0.4) behind
  every worker's ``/metrics`` endpoint.
* :func:`parse_prometheus` — the inverse, for ``repro top``'s scraper (it
  understands exactly the subset we emit).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Union


def _fmt(value: float) -> str:
    """Render a sample value the way Prometheus text format expects."""
    if value == int(value):
        return str(int(value))
    return repr(value)


def load_snapshot(path: Union[str, os.PathLike]) -> Optional[dict]:
    """Read one snapshot file; damage degrades to ``None``, never an error."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(document, dict) or "metrics" not in document:
        return None
    return document


def load_snapshots(
    directory: Union[str, os.PathLike], pattern: str = "metrics-*.json"
) -> list[dict]:
    """Every readable per-process snapshot in a fleet run directory."""
    snapshots = []
    for path in sorted(Path(directory).glob(pattern)):
        document = load_snapshot(path)
        if document is not None:
            snapshots.append(document)
    return snapshots


def merge_snapshots(snapshots: list[dict], service: str = "fleet") -> dict:
    """Exact aggregation of per-process snapshots.

    Counters and histogram bucket counts / sums / sample counts add;
    gauges add too (the gauges exported here are rates and occupancy, for
    which the fleet-wide value *is* the sum).  Bucket boundaries are
    required to agree — they come from one shared literal, so a mismatch
    means mixed code versions and the offending series is skipped rather
    than merged wrongly.
    """
    merged: dict = {"service": service, "merged_from": len(snapshots), "metrics": {}}
    out = merged["metrics"]
    for snapshot in snapshots:
        for name, metric in snapshot.get("metrics", {}).items():
            target = out.get(name)
            if target is None:
                target = {
                    "kind": metric.get("kind", "untyped"),
                    "help": metric.get("help", ""),
                    "labelnames": list(metric.get("labelnames", [])),
                    "series": {},
                }
                if "buckets" in metric:
                    target["buckets"] = list(metric["buckets"])
                out[name] = target
            if "buckets" in metric and metric["buckets"] != target.get("buckets"):
                continue  # mixed boundaries cannot merge exactly
            for key, value in metric.get("series", {}).items():
                existing = target["series"].get(key)
                if isinstance(value, dict):  # histogram series
                    if existing is None:
                        target["series"][key] = {
                            "counts": list(value["counts"]),
                            "sum": value["sum"],
                            "count": value["count"],
                        }
                    else:
                        existing["counts"] = [
                            a + b for a, b in zip(existing["counts"], value["counts"])
                        ]
                        existing["sum"] += value["sum"]
                        existing["count"] += value["count"]
                else:
                    target["series"][key] = (existing or 0.0) + value
    return merged


def _render_labels(labelnames: list, values: list, extra: Optional[tuple] = None) -> str:
    pairs = [f'{name}="{value}"' for name, value in zip(labelnames, values)]
    if extra is not None:
        pairs.append(f'{extra[0]}="{extra[1]}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_prometheus(snapshot: dict) -> str:
    """The Prometheus text format (v0.0.4) of one snapshot document."""
    lines: list[str] = []
    for name, metric in sorted(snapshot.get("metrics", {}).items()):
        kind = metric.get("kind", "untyped")
        if metric.get("help"):
            lines.append(f"# HELP {name} {metric['help']}")
        lines.append(f"# TYPE {name} {kind}")
        labelnames = list(metric.get("labelnames", []))
        for key in sorted(metric.get("series", {})):
            values = json.loads(key)
            value = metric["series"][key]
            if kind == "histogram":
                buckets = metric.get("buckets", [])
                cumulative = 0
                for bound, count in zip(buckets, value["counts"]):
                    cumulative += count
                    labels = _render_labels(labelnames, values, ("le", format(bound, ".10g")))
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                if len(value["counts"]) > len(buckets):
                    cumulative += value["counts"][len(buckets)]
                labels = _render_labels(labelnames, values, ("le", "+Inf"))
                lines.append(f"{name}_bucket{labels} {cumulative}")
                plain = _render_labels(labelnames, values)
                lines.append(f"{name}_sum{plain} {_fmt(value['sum'])}")
                lines.append(f"{name}_count{plain} {value['count']}")
            else:
                labels = _render_labels(labelnames, values)
                lines.append(f"{name}{labels} {_fmt(value)}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict:
    """Parse our own exposition back into ``{name: {labels_tuple: value}}``."""
    families: dict = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        head, _, value_text = line.rpartition(" ")
        if not head:
            continue
        labels: dict = {}
        name = head
        if "{" in head:
            name, _, label_text = head.partition("{")
            for pair in label_text.rstrip("}").split(","):
                if not pair:
                    continue
                label_name, _, label_value = pair.partition("=")
                labels[label_name] = label_value.strip('"')
        try:
            value = float(value_text)
        except ValueError:
            continue
        families.setdefault(name, {})[tuple(sorted(labels.items()))] = value
    return families
