"""``repro top`` — a live terminal dashboard over the obs subsystem.

Two data sources:

* ``--url`` scrapes one server's ``/metrics`` (plus ``/cache/stats`` and
  ``/health`` for store/worker detail).  Against a multi-worker fleet the
  kernel load-balances each scrape over ``SO_REUSEPORT``, so per-worker
  counters jitter between polls — fine for a single server, directional
  for a fleet.
* ``--run-dir`` merges every per-process snapshot file in a fleet run
  directory (workers + supervisor) — the exact fleet-wide view.

``--once`` (or ``--iterations N``) renders without clearing the screen,
which is what the CI smoke and the tests use.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import Optional

from repro.obs.expose import (
    load_snapshots,
    merge_snapshots,
    parse_prometheus,
    render_prometheus,
)

_CLEAR = "\x1b[2J\x1b[H"


def _get(url: str, timeout: float = 5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")


def _families_from_url(url: str) -> dict:
    return parse_prometheus(_get(url.rstrip("/") + "/metrics"))


def _families_from_run_dir(run_dir: str) -> dict:
    merged = merge_snapshots(load_snapshots(run_dir))
    # render + parse our own exposition: one code path for both sources
    return parse_prometheus(render_prometheus(merged))


def _series_sum(families: dict, name: str, **match) -> float:
    total = 0.0
    for labels, value in families.get(name, {}).items():
        label_map = dict(labels)
        if all(label_map.get(k) == v for k, v in match.items()):
            total += value
    return total


def _quantile(families: dict, name: str, fraction: float) -> Optional[float]:
    """Bucket-boundary quantile from ``<name>_bucket`` cumulative series."""
    points: dict = {}
    for labels, value in families.get(f"{name}_bucket", {}).items():
        label_map = dict(labels)
        le = label_map.get("le")
        if le is None:
            continue
        bound = float("inf") if le == "+Inf" else float(le)
        points[bound] = points.get(bound, 0.0) + value
    if not points:
        return None
    total = points.get(float("inf"), max(points.values()))
    if total <= 0:
        return None
    rank = max(1.0, round(fraction * total))
    last_finite = None
    for bound in sorted(points):
        if bound != float("inf"):
            last_finite = bound
        if points[bound] >= rank:
            return bound if bound != float("inf") else last_finite
    return last_finite


def _ms(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    return f"{seconds * 1000:.1f} ms"


def sample(families: dict) -> dict:
    """Normalize one scrape/merge into the dashboard's quantities."""
    return {
        "requests": _series_sum(families, "repro_requests_total"),
        "request_errors": _series_sum(families, "repro_request_errors_total"),
        "p50": _quantile(families, "repro_request_seconds", 0.50),
        "p99": _quantile(families, "repro_request_seconds", 0.99),
        "stages": {
            source: _series_sum(
                families, "repro_stage_resolutions_total", source=source
            )
            for source in ("computed", "memory", "store", "coalesced")
        },
        "store": {
            "hit": _series_sum(families, "repro_store_reads_total", outcome="hit"),
            "lru_hit": _series_sum(families, "repro_store_reads_total", outcome="lru_hit"),
            "miss": _series_sum(families, "repro_store_reads_total", outcome="miss"),
            "writes": _series_sum(families, "repro_store_writes_total"),
            "quarantined": _series_sum(families, "repro_store_quarantined_total"),
        },
        "flights": {
            outcome: _series_sum(families, "repro_flight_total", outcome=outcome)
            for outcome in ("led", "followed", "degraded")
        },
        "sat": {
            kind: _series_sum(families, "repro_sat_total", kind=kind)
            for kind in ("conflicts", "propagations", "decisions", "restarts", "learned")
        },
        "kernel_codes_per_second": _series_sum(families, "repro_kernel_codes_per_second"),
        "fleet": {
            "workers": _series_sum(families, "repro_fleet_workers"),
            "respawns": _series_sum(families, "repro_fleet_events_total", kind="respawn"),
            "recycles": _series_sum(families, "repro_fleet_events_total", kind="recycle"),
            "hung_kills": _series_sum(families, "repro_fleet_events_total", kind="hung_kill"),
        },
    }


def _rate(now: dict, before: Optional[dict], elapsed: float) -> Optional[float]:
    if before is None or elapsed <= 0:
        return None
    delta = now["requests"] - before["requests"]
    if delta < 0:
        return None  # scrape landed on a different fleet worker
    return delta / elapsed


def render(current: dict, rate: Optional[float], source: str) -> str:
    stages = current["stages"]
    store = current["store"]
    flights = current["flights"]
    sat = current["sat"]
    fleet = current["fleet"]
    reads = store["hit"] + store["lru_hit"] + store["miss"]
    hit_rate = (store["hit"] + store["lru_hit"]) / reads if reads else 0.0
    rate_text = f"{rate:.1f} req/s" if rate is not None else "- req/s"
    lines = [
        f"repro top — {source}",
        (
            f"requests  {current['requests']:.0f} total · {rate_text} · "
            f"p50 {_ms(current['p50'])} · p99 {_ms(current['p99'])} · "
            f"errors {current['request_errors']:.0f}"
        ),
        (
            f"stages    computed {stages['computed']:.0f} · memory {stages['memory']:.0f} · "
            f"store {stages['store']:.0f} · coalesced {stages['coalesced']:.0f}"
        ),
        (
            f"store     hits {store['hit']:.0f} (+{store['lru_hit']:.0f} hot-LRU, "
            f"{hit_rate * 100:.0f}%) · misses {store['miss']:.0f} · "
            f"writes {store['writes']:.0f} · quarantined {store['quarantined']:.0f}"
        ),
        (
            f"flights   led {flights['led']:.0f} · followed {flights['followed']:.0f} · "
            f"degraded {flights['degraded']:.0f}"
        ),
    ]
    if any(sat.values()) or current["kernel_codes_per_second"]:
        lines.append(
            f"sat       conflicts {sat['conflicts']:.0f} · "
            f"propagations {sat['propagations']:.0f} · restarts {sat['restarts']:.0f} · "
            f"kernel {current['kernel_codes_per_second']:.3g} codes/s"
        )
    if fleet["workers"] or fleet["respawns"] or fleet["recycles"]:
        lines.append(
            f"fleet     workers {fleet['workers']:.0f} · respawns {fleet['respawns']:.0f} · "
            f"recycles {fleet['recycles']:.0f} · hung kills {fleet['hung_kills']:.0f}"
        )
    return "\n".join(lines)


def run_top(
    url: Optional[str] = None,
    run_dir: Optional[str] = None,
    interval: float = 1.0,
    iterations: Optional[int] = None,
    clear: bool = True,
    json_output: bool = False,
    stream=None,
) -> int:
    """The ``repro top`` loop; returns an exit code."""
    if stream is None:
        stream = sys.stdout
    if (url is None) == (run_dir is None):
        print("repro top: exactly one of --url / --run-dir is required", file=stream)
        return 2
    source = url or run_dir
    before = None
    before_at = None
    count = 0
    while True:
        try:
            families = (
                _families_from_url(url) if url else _families_from_run_dir(run_dir)
            )
        except (urllib.error.URLError, OSError, ValueError) as error:
            print(f"repro top: cannot sample {source}: {error}", file=stream)
            return 1
        now = time.monotonic()
        current = sample(families)
        rate = _rate(current, before, now - (before_at or now))
        if json_output:
            print(json.dumps({**current, "req_per_s": rate}, default=str), file=stream)
        else:
            if clear and iterations is None:
                stream.write(_CLEAR)
            print(render(current, rate, source), file=stream)
            stream.flush()
        before, before_at = current, now
        count += 1
        if iterations is not None and count >= iterations:
            return 0
        time.sleep(interval)
