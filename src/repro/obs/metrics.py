"""Fleet-wide metrics registry: counters, gauges and histograms.

The serving stack (store → pipeline → scheduler → server → fleet) grew one
ad-hoc counter dict per layer (``stage_calls``, ``store_hits``,
``SingleFlight.led`` ...).  Those stay — tests pin them and they are free —
but they cannot be *aggregated*: every fleet worker is its own process, and
"requests per second across the fleet" or "the p99 of the synthesize stage"
needs per-process series that merge exactly.  This module provides that:

* :class:`Counter` / :class:`Gauge` / :class:`Histogram` with label support,
  thread-safe, zero dependencies;
* histograms use **fixed exponential bucket boundaries**
  (:data:`DEFAULT_BUCKETS`, shared by every process by construction), so a
  cross-process merge is an elementwise integer sum — *exact*, never an
  approximation;
* :meth:`Registry.snapshot` — a plain-JSON document of every series;
  :meth:`Registry.write_snapshot` persists it atomically (temp +
  ``os.replace``, the store's discipline), one file per process in the
  fleet ``run_dir``.

Aggregation across processes and the Prometheus text exposition live in
:mod:`repro.obs.expose`.  Everything here is inert until :mod:`repro.obs`
activates it — the layers hold ``None`` and pay one attribute check when
observability is off.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Optional, Union

#: Fixed exponential histogram boundaries (seconds): 0.5 ms doubling up to
#: ~262 s.  Every process derives the identical tuple from this literal, so
#: per-bucket counts merge across processes by index — exactly.
DEFAULT_BUCKETS = tuple(0.0005 * 2.0**i for i in range(20))


def _label_key(labelnames: tuple, labels: dict) -> tuple:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"labels {sorted(labels)} do not match declared labelnames "
            f"{sorted(labelnames)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class Metric:
    """Base of one named metric family (all series share the labelnames)."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: tuple = ()):  # noqa: A002
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._series: dict = {}
        self._lock = threading.Lock()

    def _to_snapshot(self) -> dict:
        with self._lock:
            series = {json.dumps(list(key)): value for key, value in self._series.items()}
        return {
            "kind": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "series": series,
        }


class Counter(Metric):
    """A monotonically increasing count (merges across processes by sum)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return self._series.get(key, 0.0)


class Gauge(Metric):
    """A point-in-time level (rates, occupancy; merges by sum)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return self._series.get(key, 0.0)


class Histogram(Metric):
    """A distribution over :data:`DEFAULT_BUCKETS`-style fixed boundaries.

    Internally each series holds *per-bucket* (non-cumulative) counts plus
    one overflow slot, the sample sum and the sample count; the cumulative
    form Prometheus expects is derived at render time.  Because every
    process uses the same boundaries, merging is an elementwise sum.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",  # noqa: A002
        labelnames: tuple = (),
        buckets: tuple = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        self.buckets = tuple(sorted(buckets))

    def observe(self, value: float, **labels) -> None:
        key = _label_key(self.labelnames, labels)
        slot = len(self.buckets)  # overflow unless a bound holds the value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                slot = index
                break
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = {"counts": [0] * (len(self.buckets) + 1), "sum": 0.0, "count": 0}
                self._series[key] = series
            series["counts"][slot] += 1
            series["sum"] += value
            series["count"] += 1

    def _to_snapshot(self) -> dict:
        document = super()._to_snapshot()
        document["buckets"] = list(self.buckets)
        # deep-copy the mutable series payloads: a snapshot must not alias
        # state that later observations keep mutating
        document["series"] = {
            key: {"counts": list(value["counts"]), "sum": value["sum"], "count": value["count"]}
            for key, value in document["series"].items()
        }
        return document

    def quantile(self, fraction: float, **labels) -> Optional[float]:
        """Bucket-boundary quantile estimate of one series (None: empty)."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None or not series["count"]:
                return None
            counts = list(series["counts"])
            total = series["count"]
        return quantile_from_counts(counts, self.buckets, total, fraction)


def quantile_from_counts(
    counts: list, buckets: tuple, total: int, fraction: float
) -> Optional[float]:
    """Upper-bound quantile from per-bucket counts (exposition-side helper)."""
    if not total:
        return None
    rank = max(1, int(round(fraction * total)))
    seen = 0
    for index, count in enumerate(counts):
        seen += count
        if seen >= rank:
            if index < len(buckets):
                return buckets[index]
            return buckets[-1] if buckets else None
    return buckets[-1] if buckets else None


class Registry:
    """One process's metric families, keyed by name (get-or-create)."""

    def __init__(self, service: str = ""):
        self.service = service
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, labelnames: tuple, **kwargs):  # noqa: A002
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help=help, labelnames=labelnames, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"not {cls.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "", labelnames: tuple = ()) -> Counter:  # noqa: A002
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: tuple = ()) -> Gauge:  # noqa: A002
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",  # noqa: A002
        labelnames: tuple = (),
        buckets: tuple = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames, buckets=buckets)

    def snapshot(self) -> dict:
        """A plain-JSON document of every series (the merge/exposition unit)."""
        with self._lock:
            metrics = dict(self._metrics)
        return {
            "service": self.service,
            "pid": os.getpid(),
            "metrics": {name: metric._to_snapshot() for name, metric in sorted(metrics.items())},
        }

    def write_snapshot(self, path: Union[str, os.PathLike]) -> Path:
        """Atomically persist :meth:`snapshot` (temp file + ``os.replace``)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(self.snapshot(), separators=(",", ":"))
        fd, temp_name = tempfile.mkstemp(
            prefix=f".{path.stem}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return path
