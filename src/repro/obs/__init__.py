"""``repro.obs`` — end-to-end observability for the serving stack.

One :class:`Obs` object bundles a metrics :class:`~repro.obs.metrics.Registry`
and a :class:`~repro.obs.trace.Tracer`, plus the well-known instrument set
every layer shares (stage timers, store read outcomes, single-flight
outcomes, HTTP request latencies, SAT solver work, fleet supervision).

The wiring follows the :mod:`repro.api.faults` seam exactly:

* every layer takes ``obs=None`` and resolves it through :func:`get_obs` —
  an :class:`Obs` instance, a text config, or ``None`` (which consults the
  ``REPRO_OBS`` environment variable);
* when observability is off the layer holds ``None`` and pays a single
  ``is None`` check per operation — nothing else changes;
* the text grammar is lossless transport (:meth:`Obs.to_text`), which is
  how the fleet supervisor configures workers and the scheduler configures
  pool processes.

Grammar (``;``-separated clauses)::

    REPRO_OBS="on"                          # in-memory metrics + trace ctx
    REPRO_OBS="dir=/tmp/run"                # + JSONL trace sink, snapshots
    REPRO_OBS="dir=/tmp/run;service=cli"    # explicit service name
    REPRO_OBS="dir=/tmp/run;trace=off"      # metrics only
    REPRO_OBS="off"                         # force-disable

Deep layers that cannot take a parameter (the SAT descent inside a
backend) read the thread-local set by :func:`activate` — the pipeline
activates its ``Obs`` around every stage compute, so
:func:`current_obs` inside :func:`repro.sat.synthesize.minimize_problem`
sees the right registry without any signature change.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Optional, Union

from repro.obs.expose import load_snapshots, merge_snapshots, render_prometheus
from repro.obs.metrics import DEFAULT_BUCKETS, Registry
from repro.obs.trace import TRACE_HEADER, Tracer, parse_header

__all__ = [
    "Obs",
    "OBS_ENV_VAR",
    "TRACE_HEADER",
    "activate",
    "current_obs",
    "get_obs",
    "parse_header",
]

OBS_ENV_VAR = "REPRO_OBS"

_OFF_TOKENS = {"", "off", "0", "false", "no", "none"}


class Obs:
    """A process's observability bundle: registry + tracer + sink location.

    With no ``dir`` the registry is in-memory only (still scrapable via
    ``/metrics``) and trace records are counted but dropped; with a ``dir``
    the tracer appends ``trace-<service>.jsonl`` and
    :meth:`write_snapshot` persists ``metrics-<service>.json`` there.
    """

    def __init__(
        self,
        dir: Union[str, os.PathLike, None] = None,  # noqa: A002 - grammar key
        service: Optional[str] = None,
        trace: bool = True,
        metrics: bool = True,
    ):
        self.dir = Path(dir) if dir is not None else None
        self.service = service or f"pid{os.getpid()}"
        self.trace_enabled = bool(trace)
        self.metrics_enabled = bool(metrics)
        self.registry = Registry(service=self.service)
        sink = None
        if self.dir is not None and self.trace_enabled:
            self.dir.mkdir(parents=True, exist_ok=True)
            sink = self.dir / f"trace-{self.service}.jsonl"
        self.tracer = Tracer(sink=sink, service=self.service)

        # The shared instrument set.  Creating these eagerly keeps the hot
        # paths to one attribute access; any layer may add its own via
        # ``obs.registry`` as well.
        r = self.registry
        self.stage_seconds = r.histogram(
            "repro_stage_seconds", "wall time per computed pipeline stage", ("stage",)
        )
        self.stage_cpu_seconds = r.histogram(
            "repro_stage_cpu_seconds", "CPU time per computed pipeline stage", ("stage",)
        )
        self.stage_resolutions = r.counter(
            "repro_stage_resolutions_total",
            "pipeline stage resolutions by source",
            ("stage", "source"),
        )
        self.store_reads = r.counter(
            "repro_store_reads_total", "artifact store reads by outcome", ("outcome",)
        )
        self.store_writes = r.counter(
            "repro_store_writes_total", "artifact store documents written"
        )
        self.store_quarantined = r.counter(
            "repro_store_quarantined_total", "artifacts quarantined as damaged"
        )
        self.flights = r.counter(
            "repro_flight_total", "single-flight lock outcomes", ("outcome",)
        )
        self.requests = r.counter(
            "repro_requests_total", "HTTP requests served", ("endpoint",)
        )
        self.request_seconds = r.histogram(
            "repro_request_seconds", "HTTP request wall time", ("endpoint",)
        )
        self.request_errors = r.counter(
            "repro_request_errors_total", "HTTP requests answered with an error", ("endpoint",)
        )
        self.jobs = r.counter(
            "repro_jobs_total", "scheduler job events", ("status",)
        )
        self.sat_work = r.counter(
            "repro_sat_total", "SAT solver work counters", ("kind",)
        )
        self.sat_phase_seconds = r.histogram(
            "repro_sat_phase_seconds", "wall time per SAT descent phase", ("phase",)
        )
        self.kernel_codes_per_second = r.gauge(
            "repro_kernel_codes_per_second",
            "mapped-verification state codes checked per second (most recent run)",
        )
        self.fleet_workers = r.gauge("repro_fleet_workers", "live fleet worker processes")
        self.fleet_events = r.counter(
            "repro_fleet_events_total", "fleet supervision events", ("kind",)
        )

    # -- transport ------------------------------------------------------ #

    @classmethod
    def parse(cls, text: str) -> Optional["Obs"]:
        """Build from the grammar; off-tokens give ``None``."""
        text = (text or "").strip()
        if text.lower() in _OFF_TOKENS:
            return None
        fields: dict = {}
        for clause in text.split(";"):
            clause = clause.strip()
            if not clause or clause.lower() in {"on", "1", "true"}:
                continue
            key, sep, value = clause.partition("=")
            key = key.strip()
            value = value.strip()
            if not sep:
                raise ValueError(f"obs clause {clause!r} is not 'on' or 'key=value'")
            if key == "dir":
                fields["dir"] = value
            elif key == "service":
                fields["service"] = value
            elif key in ("trace", "metrics"):
                fields[key] = value.lower() not in _OFF_TOKENS
            else:
                raise ValueError(f"unknown obs key {key!r} in {clause!r}")
        return cls(**fields)

    def to_text(self, include_service: bool = False) -> str:
        """Lossless text form (service omitted so children name themselves)."""
        clauses = []
        if self.dir is not None:
            clauses.append(f"dir={self.dir}")
        if include_service:
            clauses.append(f"service={self.service}")
        if not self.trace_enabled:
            clauses.append("trace=off")
        if not self.metrics_enabled:
            clauses.append("metrics=off")
        return ";".join(clauses) if clauses else "on"

    def reconfigure(
        self,
        service: Optional[str] = None,
        dir: Union[str, os.PathLike, None] = None,  # noqa: A002
    ) -> "Obs":
        """A fresh Obs with overrides (used before anything is recorded)."""
        return Obs(
            dir=dir if dir is not None else self.dir,
            service=service if service is not None else self.service,
            trace=self.trace_enabled,
            metrics=self.metrics_enabled,
        )

    # -- persistence ---------------------------------------------------- #

    @property
    def snapshot_path(self) -> Optional[Path]:
        if self.dir is None:
            return None
        return self.dir / f"metrics-{self.service}.json"

    def write_snapshot(self) -> Optional[Path]:
        """Persist this process's metrics for supervisor aggregation."""
        path = self.snapshot_path
        if path is None or not self.metrics_enabled:
            return None
        try:
            return self.registry.write_snapshot(path)
        except OSError:
            return None  # observability must never take down the worker

    def render_metrics(self) -> str:
        return render_prometheus(self.registry.snapshot())


ObsLike = Union[Obs, str, None]


def get_obs(obs: ObsLike = None) -> Optional[Obs]:
    """Resolve an obs argument the way :func:`repro.api.faults.get_injector`
    resolves faults: instance → as-is, text → parsed, ``None`` → the
    ``REPRO_OBS`` environment variable, absent → off (``None``)."""
    if isinstance(obs, Obs):
        return obs
    if obs is not None:
        return Obs.parse(obs)
    env = os.environ.get(OBS_ENV_VAR)
    if env:
        return Obs.parse(env)
    return None


# -- thread-local activation (the SAT layer's seam) ---------------------- #

_ACTIVE = threading.local()


def current_obs() -> Optional[Obs]:
    """The Obs activated on this thread, if any (see :func:`activate`)."""
    return getattr(_ACTIVE, "obs", None)


@contextmanager
def activate(obs: Optional[Obs]):
    """Make ``obs`` visible to :func:`current_obs` for the duration.

    The pipeline activates its Obs around each stage compute so that code
    deep inside a backend — the SAT descent, notably — can record solver
    counters and phase spans without threading ``obs`` through every
    signature.
    """
    previous = getattr(_ACTIVE, "obs", None)
    _ACTIVE.obs = obs
    try:
        yield obs
    finally:
        _ACTIVE.obs = previous


def fleet_metrics(run_dir: Union[str, os.PathLike]) -> dict:
    """Merge every per-process snapshot in a fleet run directory (exact)."""
    return merge_snapshots(load_snapshots(run_dir))
