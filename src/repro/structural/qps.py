"""Quiescent place sets and backward place sets (Fig. 10, Appendix E).

The domain used to approximate the quiescent region QR(t) of a signal
transition is its *quiescent place set* QPS(t): every place interleaved
between ``t`` and some successor transition of the same signal.  Structurally
this is the set of places visited by a forward search from ``t`` that stops
at transitions of the signal.

The *backward place set* BPS(t) plays the same role for the backward
quiescent region BR(t) (Appendix E): the places interleaved between the
predecessor transitions of the signal and ``t``, obtained by the symmetric
backward search.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.stg.stg import STG


def _directional_place_walk(
    stg: STG,
    transition: str,
    forward: bool,
) -> tuple[set[str], set[str]]:
    """Walk from a transition, stopping at transitions of the same signal.

    Returns ``(places, boundary_transitions)`` where ``places`` are the
    places visited and ``boundary_transitions`` the same-signal transitions
    at which the walk stopped.
    """
    net = stg.net
    signal = stg.signal_of(transition)
    places: set[str] = set()
    boundary: set[str] = set()
    visited: set[str] = set()
    frontier: deque[str] = deque()
    neighbours = net.postset(transition) if forward else net.preset(transition)
    for node in neighbours:
        frontier.append(node)
    while frontier:
        node = frontier.popleft()
        if node in visited:
            continue
        visited.add(node)
        if net.is_transition(node):
            if stg.signal_of(node) == signal:
                boundary.add(node)
                continue
            next_nodes = net.postset(node) if forward else net.preset(node)
        else:
            places.add(node)
            next_nodes = net.postset(node) if forward else net.preset(node)
        for successor in next_nodes:
            if successor not in visited:
                frontier.append(successor)
    return places, boundary


def compute_qps(
    stg: STG,
    transitions: Optional[list[str]] = None,
    next_relation: Optional[dict[str, set[str]]] = None,
) -> dict[str, set[str]]:
    """Quiescent place sets QPS(t) for the given transitions (default: all).

    ``QPS(t)`` contains every place *interleaved* between ``t`` and some
    successor transition ``t' ∈ next(t)``: the place must be reachable from
    ``t`` without crossing another transition of the signal, and a successor
    transition must be reachable from the place the same way (equivalently,
    the place is backward-reachable from a successor).  The second condition
    keeps places of concurrent branches — whose marked regions extend outside
    the quiescent region — out of the domain.

    ``next_relation`` supplies the successors (the structural ``next``
    relation of Property 4); without it, the same-signal transitions found by
    the unrestricted forward walk are used, which is a coarser domain.
    """
    result: dict[str, set[str]] = {}
    targets = transitions if transitions is not None else stg.transitions
    for transition in targets:
        forward_places, walk_successors = _directional_place_walk(
            stg, transition, forward=True
        )
        if next_relation is not None:
            successors = next_relation.get(transition, set())
        else:
            successors = walk_successors
        # Places from which a successor transition is reachable = places on
        # the backward walks from the successors.
        reach_back: set[str] = set()
        for successor in successors:
            places, _ = _directional_place_walk(stg, successor, forward=False)
            reach_back |= places
        result[transition] = forward_places & reach_back
    return result


def compute_backward_place_sets(
    stg: STG,
    transitions: Optional[list[str]] = None,
    next_relation: Optional[dict[str, set[str]]] = None,
) -> dict[str, set[str]]:
    """Backward place sets BPS(t) (Appendix E).

    ``BPS(t)`` contains every place interleaved between a predecessor
    transition of the signal and ``t``: backward-reachable from ``t`` without
    crossing another transition of the signal, and forward-reachable from a
    predecessor transition of the signal the same way.
    """
    result: dict[str, set[str]] = {}
    targets = transitions if transitions is not None else stg.transitions
    predecessors_of: dict[str, set[str]] = {}
    if next_relation is not None:
        for source, successors in next_relation.items():
            for successor in successors:
                predecessors_of.setdefault(successor, set()).add(source)
    for transition in targets:
        backward_places, walk_predecessors = _directional_place_walk(
            stg, transition, forward=False
        )
        if next_relation is not None:
            predecessors = predecessors_of.get(transition, set())
        else:
            predecessors = walk_predecessors
        reach_forward: set[str] = set()
        for predecessor in predecessors:
            places, _ = _directional_place_walk(stg, predecessor, forward=True)
            reach_forward |= places
        result[transition] = backward_places & reach_forward
    return result


def qps_boundary_places(
    stg: STG,
    transition: str,
    qps: set[str],
    successors: set[str],
) -> set[str]:
    """Places of QPS(t) lying in the preset of a successor transition.

    These are the boundary places whose cover function must be reduced by the
    covers of the successor excitation regions to avoid overestimating the
    quiescent region (Section VI-A).
    """
    boundary: set[str] = set()
    for successor in successors:
        boundary |= stg.net.preset(successor) & qps
    del transition  # the boundary only depends on the successors
    return boundary
