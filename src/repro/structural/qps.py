"""Quiescent place sets and backward place sets (Fig. 10, Appendix E).

The domain used to approximate the quiescent region QR(t) of a signal
transition is its *quiescent place set* QPS(t): every place interleaved
between ``t`` and some successor transition of the same signal.  Structurally
this is the set of places visited by a forward search from ``t`` that stops
at transitions of the signal.

The *backward place set* BPS(t) plays the same role for the backward
quiescent region BR(t) (Appendix E): the places interleaved between the
predecessor transitions of the signal and ``t``, obtained by the symmetric
backward search.

The walks run on the bit-packed kernel: places are bits of the compiled
net's ``pre_masks``/``post_masks``, a walk is a mask fixed point (a
transition is reached as soon as any of its adjacent places is visited, and
expands to its far-side places unless it carries the walked signal), and the
intersections that define QPS/BPS are single AND operations.  Per-transition
walk results are memoised within one ``compute_*`` call, so the backward
walks shared by many successors are computed once.  The node-at-a-time BFS
is retained as :func:`_directional_place_walk` — the differential-test
oracle.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.petri.compiled import compile_net
from repro.stg.stg import STG


def _engine_for(stg: STG) -> "_WalkEngine":
    """Walk engine for an STG, cached on the net's structural version.

    ``compute_qps`` and ``compute_backward_place_sets`` are typically called
    back to back on the same STG (the approximation front-end); sharing the
    engine shares the per-transition walk memos between them.
    """
    version = getattr(stg.net, "_version", None)
    cached = getattr(stg, "_walk_engine_cache", None)
    if cached is not None and cached[0] == version:
        return cached[1]
    engine = _WalkEngine(stg)
    try:
        stg._walk_engine_cache = (version, engine)
    except AttributeError:
        pass  # STG-like object without attribute support; skip caching
    return engine


class _WalkEngine:
    """Mask-based directional walks over one STG's compiled net."""

    def __init__(self, stg: STG):
        self.stg = stg
        compiled = compile_net(stg.net)
        self.compiled = compiled
        self.place_names = compiled.place_names
        self.transition_index = compiled.transition_index
        self.signal_of = [
            stg.signal_of(name) for name in compiled.transition_names
        ]
        self._cache: dict[tuple[int, bool], tuple[int, int]] = {}

    def walk(self, transition: int, forward: bool) -> tuple[int, int]:
        """``(places_mask, boundary_transition_mask)`` of a directional walk.

        Starting from the far-side places of ``transition``, a transition is
        visited once any adjacent place on the walk's near side is visited;
        same-signal transitions become boundary and do not expand.
        """
        key = (transition, forward)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        compiled = self.compiled
        pre_masks = compiled.pre_masks
        post_masks = compiled.post_masks
        into, out_of = (
            (pre_masks, post_masks) if forward else (post_masks, pre_masks)
        )
        signal = self.signal_of[transition]
        signal_of = self.signal_of
        places = out_of[transition]
        visited = 0
        boundary = 0
        changed = True
        while changed:
            changed = False
            for u, reach in enumerate(into):
                bit = 1 << u
                if visited & bit or not reach & places:
                    continue
                visited |= bit
                changed = True
                if signal_of[u] == signal:
                    boundary |= bit
                    continue
                expand = out_of[u] & ~places
                if expand:
                    places |= expand
        result = (places, boundary)
        self._cache[key] = result
        return result

    def names_of_places(self, mask: int) -> set[str]:
        names = self.place_names
        result: set[str] = set()
        while mask:
            low = mask & -mask
            result.add(names[low.bit_length() - 1])
            mask ^= low
        return result

    def names_of_transitions(self, mask: int) -> set[str]:
        names = self.compiled.transition_names
        result: set[str] = set()
        while mask:
            low = mask & -mask
            result.add(names[low.bit_length() - 1])
            mask ^= low
        return result


def _directional_place_walk(
    stg: STG,
    transition: str,
    forward: bool,
) -> tuple[set[str], set[str]]:
    """Reference node-at-a-time walk (differential-test oracle).

    Returns ``(places, boundary_transitions)`` where ``places`` are the
    places visited and ``boundary_transitions`` the same-signal transitions
    at which the walk stopped.
    """
    net = stg.net
    signal = stg.signal_of(transition)
    places: set[str] = set()
    boundary: set[str] = set()
    visited: set[str] = set()
    frontier: deque[str] = deque()
    neighbours = net.postset(transition) if forward else net.preset(transition)
    for node in neighbours:
        frontier.append(node)
    while frontier:
        node = frontier.popleft()
        if node in visited:
            continue
        visited.add(node)
        if net.is_transition(node):
            if stg.signal_of(node) == signal:
                boundary.add(node)
                continue
            next_nodes = net.postset(node) if forward else net.preset(node)
        else:
            places.add(node)
            next_nodes = net.postset(node) if forward else net.preset(node)
        for successor in next_nodes:
            if successor not in visited:
                frontier.append(successor)
    return places, boundary


def compute_qps(
    stg: STG,
    transitions: Optional[list[str]] = None,
    next_relation: Optional[dict[str, set[str]]] = None,
) -> dict[str, set[str]]:
    """Quiescent place sets QPS(t) for the given transitions (default: all).

    ``QPS(t)`` contains every place *interleaved* between ``t`` and some
    successor transition ``t' ∈ next(t)``: the place must be reachable from
    ``t`` without crossing another transition of the signal, and a successor
    transition must be reachable from the place the same way (equivalently,
    the place is backward-reachable from a successor).  The second condition
    keeps places of concurrent branches — whose marked regions extend outside
    the quiescent region — out of the domain.

    ``next_relation`` supplies the successors (the structural ``next``
    relation of Property 4); without it, the same-signal transitions found by
    the unrestricted forward walk are used, which is a coarser domain.
    """
    engine = _engine_for(stg)
    tindex = engine.transition_index
    result: dict[str, set[str]] = {}
    targets = transitions if transitions is not None else stg.transitions
    for transition in targets:
        t = tindex[transition]
        forward_places, walk_boundary = engine.walk(t, forward=True)
        if next_relation is not None:
            successors = next_relation.get(transition, set())
        else:
            successors = engine.names_of_transitions(walk_boundary)
        # Places from which a successor transition is reachable = places on
        # the backward walks from the successors.
        reach_back = 0
        for successor in successors:
            index = tindex.get(successor)
            if index is None:
                continue
            places, _ = engine.walk(index, forward=False)
            reach_back |= places
        result[transition] = engine.names_of_places(forward_places & reach_back)
    return result


def compute_backward_place_sets(
    stg: STG,
    transitions: Optional[list[str]] = None,
    next_relation: Optional[dict[str, set[str]]] = None,
) -> dict[str, set[str]]:
    """Backward place sets BPS(t) (Appendix E).

    ``BPS(t)`` contains every place interleaved between a predecessor
    transition of the signal and ``t``: backward-reachable from ``t`` without
    crossing another transition of the signal, and forward-reachable from a
    predecessor transition of the signal the same way.
    """
    engine = _engine_for(stg)
    tindex = engine.transition_index
    result: dict[str, set[str]] = {}
    targets = transitions if transitions is not None else stg.transitions
    predecessors_of: dict[str, set[str]] = {}
    if next_relation is not None:
        for source, successors in next_relation.items():
            for successor in successors:
                predecessors_of.setdefault(successor, set()).add(source)
    for transition in targets:
        t = tindex[transition]
        backward_places, walk_boundary = engine.walk(t, forward=False)
        if next_relation is not None:
            predecessors = predecessors_of.get(transition, set())
        else:
            predecessors = engine.names_of_transitions(walk_boundary)
        reach_forward = 0
        for predecessor in predecessors:
            index = tindex.get(predecessor)
            if index is None:
                continue
            places, _ = engine.walk(index, forward=True)
            reach_forward |= places
        result[transition] = engine.names_of_places(
            backward_places & reach_forward
        )
    return result


def qps_boundary_places(
    stg: STG,
    transition: str,
    qps: set[str],
    successors: set[str],
) -> set[str]:
    """Places of QPS(t) lying in the preset of a successor transition.

    These are the boundary places whose cover function must be reduced by the
    covers of the successor excitation regions to avoid overestimating the
    quiescent region (Section VI-A).
    """
    boundary: set[str] = set()
    for successor in successors:
        boundary |= stg.net.preset(successor) & qps
    del transition  # the boundary only depends on the successors
    return boundary
