"""Structural detection of complete state coding (Theorems 14 and 15).

A CSC violation manifests structurally: some place in the preset of an output
transition conflicts, inside every SM-component containing it, with another
place (Theorem 14).  Conversely, if for every place in the preset of an
output transition there exists an SM-component of the cover in which the
place has no structural coding conflict, the STG satisfies CSC (Theorem 15).

The check is conservative in the safe direction: it may report "unknown" for
an STG that actually satisfies CSC (the structural conflicts are then treated
as real and state-signal insertion would be required), but it never certifies
CSC for an STG that violates it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.boolean.cover import Cover
from repro.petri.smcover import StateMachineComponent
from repro.stg.stg import STG
from repro.structural.refinement import place_has_conflict_in_component


@dataclass
class StructuralCSCReport:
    """Result of the structural CSC analysis."""

    satisfied: bool
    unresolved_places: list[str] = field(default_factory=list)
    witnesses: dict[str, frozenset[str]] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.satisfied


def output_preset_places(stg: STG) -> set[str]:
    """Places in the preset of some non-input (output/internal) transition."""
    places: set[str] = set()
    for transition in stg.transitions:
        if stg.is_input(stg.signal_of(transition)):
            continue
        places |= stg.net.preset(transition)
    return places


def _signals_with_place_in_preset(stg: STG, place: str) -> set[tuple[str, str]]:
    """Pairs ``(signal, direction)`` of the transitions consuming ``place``."""
    result: set[tuple[str, str]] = set()
    for transition in stg.net.postset(place):
        result.add((stg.signal_of(transition), stg.direction_of(transition)))
    return result


def _conflict_is_benign(
    stg: STG,
    place: str,
    cover_functions: dict[str, Cover],
    component: StateMachineComponent,
) -> bool:
    """Theorem-14-based argument that the conflicts of ``place`` are benign.

    If every place of the component whose cover intersects the cover of
    ``place`` consumes into transitions of the same signals and directions as
    ``place`` does, then a marking sharing the binary code enables the same
    output events, so the code sharing is compatible with CSC (this is the
    argument the paper applies to the p2/p9 conflict of the running example).
    """
    own_events = _signals_with_place_in_preset(stg, place)
    if not own_events:
        return False
    own = cover_functions[place]
    for other in component.places:
        if other == place:
            continue
        if not own.intersects_cover(cover_functions[other]):
            continue
        other_events = _signals_with_place_in_preset(stg, other)
        if other_events != own_events:
            return False
    return True


def check_csc_structural(
    stg: STG,
    cover_functions: dict[str, Cover],
    sm_cover: list[StateMachineComponent],
    places: Optional[set[str]] = None,
    allow_same_event_sharing: bool = True,
) -> StructuralCSCReport:
    """Theorems 14/15: certify CSC from the structural coding conflicts.

    For every place in the preset of an output transition (or the given
    ``places``), look for an SM-component of the cover containing the place
    in which it has no structural coding conflict (Theorem 15).  When
    ``allow_same_event_sharing`` is set, a place whose remaining conflicts
    are all with places feeding the *same* signal events is also accepted
    (the Theorem-14-based argument of Section VII-B2: such code sharing
    relates markings that enable the same output transitions).
    """
    targets = places if places is not None else output_preset_places(stg)
    unresolved: list[str] = []
    witnesses: dict[str, frozenset[str]] = {}
    for place in sorted(targets):
        containing = [c for c in sm_cover if place in c.places]
        witness = None
        for component in containing:
            if not place_has_conflict_in_component(place, cover_functions, component):
                witness = component
                break
        if witness is None and allow_same_event_sharing:
            for component in containing:
                if _conflict_is_benign(stg, place, cover_functions, component):
                    witness = component
                    break
        if witness is None:
            unresolved.append(place)
        else:
            witnesses[place] = witness.places
    return StructuralCSCReport(
        satisfied=not unresolved,
        unresolved_places=unresolved,
        witnesses=witnesses,
    )


def potential_csc_violation_places(
    stg: STG,
    cover_functions: dict[str, Cover],
    sm_cover: list[StateMachineComponent],
) -> list[tuple[str, str, str]]:
    """Theorem 14: candidate witnesses of a CSC violation.

    Returns triples ``(component_place, conflicting_place, output_transition)``
    where ``component_place`` is in the preset of the output transition, is
    not in the preset of any other transition of the same signal, and its
    cover intersects the cover of ``conflicting_place`` in some SM-component.
    Any real CSC violation produces at least one such triple; the converse
    does not hold (the triple may come from an overestimated cover).
    """
    results: list[tuple[str, str, str]] = []
    for transition in stg.transitions:
        signal = stg.signal_of(transition)
        if stg.is_input(signal):
            continue
        other_presets: set[str] = set()
        for other in stg.transitions_of_signal(signal):
            if other != transition:
                other_presets |= stg.net.preset(other)
        for place in stg.net.preset(transition):
            if place in other_presets:
                continue
            for component in sm_cover:
                if place not in component.places:
                    continue
                for other_place in component.places:
                    if other_place == place:
                        continue
                    if cover_functions[place].intersects_cover(
                        cover_functions[other_place]
                    ):
                        results.append((place, other_place, transition))
    return results
