"""Concurrency relations of an STG (Section V-A).

The concurrency relation CR relates pairs of nodes (places and transitions)
that can be simultaneously "active": two places that can be simultaneously
marked, a place that can be marked while a transition is enabled (without the
transition consuming its token), and two transitions that can be enabled
without disabling each other.

For live and safe free-choice nets the relation is computed exactly by a
polynomial fixed-point algorithm in the style of Kovalyov and Esparza
(reference [29] of the paper):

* initially, all pairs of distinct places marked at the initial marking and
  all pairs of distinct output places of a transition are concurrent;
* a node ``x`` is concurrent with a transition ``t`` when it is concurrent
  with every input place of ``t`` (and is not itself an input or output place
  of ``t``); in that case ``x`` also becomes concurrent with every output
  place of ``t``;
* iterate to a fixed point.

For non-free-choice nets the result is a conservative over-approximation,
which is the safe direction for the synthesis method.

The relation is stored as one bitset row (a plain ``int``) per node over an
interned node order, so both the fixed point's inner check ("concurrent with
every input place of ``t``") and the symmetric insertions are single integer
operations; the name-based accessors decode at the API boundary.

The *signal concurrency relation* SCR relates a node to a signal when it is
concurrent with some transition of that signal (Definition 3).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.stg.stg import STG


class ConcurrencyRelation:
    """The symmetric concurrency relation over the nodes of an STG."""

    def __init__(self, stg: STG):
        self.stg = stg
        net = stg.net
        self._names: list[str] = net.nodes  # places first, then transitions
        self._num_places = net.num_places()
        self._index: dict[str, int] = {
            name: i for i, name in enumerate(self._names)
        }
        self._rows: list[int] = [0] * len(self._names)
        # signal -> bitmask over node indices of the signal's transitions
        self._signal_masks: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Construction (used by the computation function)
    # ------------------------------------------------------------------ #

    def _add(self, first: str, second: str) -> bool:
        """Add a symmetric pair; returns True if it was new."""
        i = self._index[first]
        j = self._index[second]
        return self._add_indices(i, j)

    def _add_indices(self, i: int, j: int) -> bool:
        """Index-based :meth:`_add` (used by the bitset fixed point)."""
        if i == j:
            return False
        rows = self._rows
        if rows[i] >> j & 1:
            return False
        rows[i] |= 1 << j
        rows[j] |= 1 << i
        return True

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def are_concurrent(self, first: str, second: str) -> bool:
        """True if the two nodes are (conservatively) concurrent."""
        i = self._index.get(first)
        j = self._index.get(second)
        if i is None or j is None:
            return False
        return bool(self._rows[i] >> j & 1)

    def _row_names(self, row: int) -> list[str]:
        names = self._names
        result = []
        while row:
            low = row & -row
            result.append(names[low.bit_length() - 1])
            row ^= low
        return result

    def concurrent_nodes(self, node: str) -> frozenset[str]:
        """All nodes concurrent with ``node``."""
        index = self._index.get(node)
        if index is None:
            return frozenset()
        return frozenset(self._row_names(self._rows[index]))

    def concurrent_places(self, node: str) -> frozenset[str]:
        """Places concurrent with ``node``."""
        index = self._index.get(node)
        if index is None:
            return frozenset()
        place_mask = (1 << self._num_places) - 1
        return frozenset(self._row_names(self._rows[index] & place_mask))

    def concurrent_transitions(self, node: str) -> frozenset[str]:
        """Transitions concurrent with ``node``."""
        index = self._index.get(node)
        if index is None:
            return frozenset()
        place_mask = (1 << self._num_places) - 1
        return frozenset(self._row_names(self._rows[index] & ~place_mask))

    def _signal_mask(self, signal: str) -> int:
        """Bitmask of the node indices of a signal's transitions (memoised)."""
        mask = self._signal_masks.get(signal)
        if mask is None:
            mask = 0
            lookup = self._index.get
            for transition in self.stg.transitions_of_signal(signal):
                j = lookup(transition)
                if j is not None:
                    mask |= 1 << j
            self._signal_masks[signal] = mask
        return mask

    def node_concurrent_with_signal(self, node: str, signal: str) -> bool:
        """Signal concurrency relation SCR (Definition 3).

        True when the node is concurrent with some transition of ``signal``
        — one intersection of the node's bitset row with the signal's
        transition mask.
        """
        index = self._index.get(node)
        if index is None:
            return False
        return bool(self._rows[index] & self._signal_mask(signal))

    def signals_concurrent_with(self, node: str) -> set[str]:
        """All signals concurrent with a node."""
        return {
            signal for signal in self.stg.signal_names
            if self.node_concurrent_with_signal(node, signal)
        }

    def pairs(self) -> set[frozenset[str]]:
        """All concurrent pairs as frozensets."""
        result: set[frozenset[str]] = set()
        names = self._names
        for i, row in enumerate(self._rows):
            row >>= i + 1  # emit each symmetric pair once
            base = i + 1
            while row:
                low = row & -row
                result.add(frozenset((names[i], names[base + low.bit_length() - 1])))
                row ^= low
        return result

    def transition_pairs(self) -> set[frozenset[str]]:
        """Concurrent transition-transition pairs only."""
        result: set[frozenset[str]] = set()
        names = self._names
        num_places = self._num_places
        for i in range(num_places, len(names)):
            row = self._rows[i] >> (i + 1)
            base = i + 1
            while row:
                low = row & -row
                result.add(frozenset((names[i], names[base + low.bit_length() - 1])))
                row ^= low
        return result

    def place_table(self) -> dict[str, dict[str, bool]]:
        """Place-versus-place concurrency table (Table II of the paper)."""
        places = self.stg.places
        return {
            row: {column: self.are_concurrent(row, column) for column in places}
            for row in places
        }

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_json(self) -> dict:
        """JSON-serializable form: the node order plus one hex row per node.

        The node order is recorded explicitly so a reader can detect a
        mismatch against the net it rebuilds the relation over (the bit
        positions are only meaningful relative to that order).
        """
        return {
            "nodes": list(self._names),
            "rows": [format(row, "x") for row in self._rows],
        }

    @classmethod
    def from_json(cls, stg: STG, data: dict) -> "ConcurrencyRelation":
        """Rebuild a relation over ``stg`` from :meth:`to_json` output.

        Raises :class:`ValueError` when the serialized node order does not
        match the net's (the rows would be misinterpreted bit-by-bit).
        """
        relation = cls(stg)
        nodes = list(data.get("nodes", ()))
        if nodes != relation._names:
            raise ValueError(
                "serialized concurrency relation does not match the net: "
                f"{len(nodes)} nodes vs {len(relation._names)}"
            )
        rows = [int(row, 16) for row in data.get("rows", ())]
        if len(rows) != len(relation._rows):
            raise ValueError("serialized concurrency relation has wrong row count")
        relation._rows = rows
        return relation


def compute_concurrency_relation(
    stg: STG,
    max_iterations: Optional[int] = None,
) -> ConcurrencyRelation:
    """Fixed-point computation of the concurrency relation.

    Complexity is polynomial in the size of the net: every pair of nodes is
    inserted at most once and each insertion triggers work proportional to
    the adjacent transitions.  The fixed point runs entirely on node indices
    and bitset rows; names only appear in the seed extraction and in the
    returned relation's accessors.
    """
    net = stg.net
    relation = ConcurrencyRelation(stg)
    index = relation._index
    rows = relation._rows
    num_places = relation._num_places
    worklist: deque[tuple[int, int]] = deque()

    append = worklist.append

    def add(i: int, j: int) -> None:
        if i != j and not rows[i] >> j & 1:
            rows[i] |= 1 << j
            rows[j] |= 1 << i
            append((i, j))

    # Per-transition masks over the node-index space, and per-place consumer
    # lists, precomputed once (as index-addressed arrays) so the fixed point
    # never touches name sets or hashes.
    num_nodes = len(relation._names)
    transition_indices = [index[t] for t in net.transitions]
    pre_mask: list[int] = [0] * num_nodes
    adjacent_mask: list[int] = [0] * num_nodes
    post_places: list[list[int]] = [[] for _ in range(num_nodes)]
    consumers: list[list[int]] = [[] for _ in range(num_places)]
    for transition, t_index in zip(net.transitions, transition_indices):
        pre = 0
        for place in net.preset(transition):
            p_index = index[place]
            pre |= 1 << p_index
            consumers[p_index].append(t_index)
        post = 0
        outputs = []
        for place in net.postset(transition):
            p_index = index[place]
            post |= 1 << p_index
            outputs.append(p_index)
        pre_mask[t_index] = pre
        adjacent_mask[t_index] = pre | post
        post_places[t_index] = outputs

    # Seed: places simultaneously marked initially.
    marked = sorted(net.initial_marking.marked_places)
    marked_indices = [index[p] for p in marked if p in index]
    for i, first in enumerate(marked_indices):
        for second in marked_indices[i + 1:]:
            add(first, second)
    # Seed: output places of the same transition are simultaneously marked
    # right after it fires.
    for t_index in transition_indices:
        outputs = sorted(post_places[t_index])
        for i, first in enumerate(outputs):
            for second in outputs[i + 1:]:
                add(first, second)

    # Propagation: when ``node`` becomes concurrent with a place, only the
    # transitions consuming that place can newly satisfy the inference rule
    # ("node concurrent with every input place of t").  The rule body is
    # inlined: it runs once per (pair, adjacent transition) and dominates the
    # fixed point on densely concurrent nets.
    popleft = worklist.popleft
    iterations = 0
    while worklist:
        iterations += 1
        if max_iterations is not None and iterations > max_iterations:
            raise RuntimeError("concurrency fixed point did not converge in time")
        first, second = popleft()
        for node, other in ((first, second), (second, first)):
            if other >= num_places:
                continue
            for t_index in consumers[other]:
                if node == t_index or adjacent_mask[t_index] >> node & 1:
                    continue
                pre = pre_mask[t_index]
                if pre and rows[node] & pre == pre:
                    if not rows[node] >> t_index & 1:
                        rows[node] |= 1 << t_index
                        rows[t_index] |= 1 << node
                        append((node, t_index))
                    for output in post_places[t_index]:
                        if output != node and not rows[node] >> output & 1:
                            rows[node] |= 1 << output
                            rows[output] |= 1 << node
                            append((node, output))
    return relation


def concurrency_from_reachability(stg: STG) -> ConcurrencyRelation:
    """Exact concurrency relation extracted from the reachability graph.

    Used as a test oracle for :func:`compute_concurrency_relation` on small
    STGs; exponential in the worst case.
    """
    from repro.petri.reachability import build_reachability_graph

    net = stg.net
    graph = build_reachability_graph(net)
    relation = ConcurrencyRelation(stg)
    for marking in graph:
        marked = sorted(marking.marked_places)
        enabled = sorted(graph.enabled_transitions(marking))
        # place || place
        for i, first in enumerate(marked):
            for second in marked[i + 1:]:
                relation._add(first, second)
        # place || transition: the place stays marked while the transition
        # fires (it is not an input place of the transition).
        for place in marked:
            for transition in enabled:
                if place not in net.preset(transition):
                    relation._add(place, transition)
        # transition || transition (true concurrency: neither disables the
        # other).
        for i, first in enumerate(enabled):
            after_first = net.fire(first, marking)
            for second in enabled[i + 1:]:
                if net.is_enabled(second, after_first):
                    after_second = net.fire(second, marking)
                    if net.is_enabled(first, after_second):
                        relation._add(first, second)
    return relation
