"""Concurrency relations of an STG (Section V-A).

The concurrency relation CR relates pairs of nodes (places and transitions)
that can be simultaneously "active": two places that can be simultaneously
marked, a place that can be marked while a transition is enabled (without the
transition consuming its token), and two transitions that can be enabled
without disabling each other.

For live and safe free-choice nets the relation is computed exactly by a
polynomial fixed-point algorithm in the style of Kovalyov and Esparza
(reference [29] of the paper):

* initially, all pairs of distinct places marked at the initial marking and
  all pairs of distinct output places of a transition are concurrent;
* a node ``x`` is concurrent with a transition ``t`` when it is concurrent
  with every input place of ``t`` (and is not itself an input or output place
  of ``t``); in that case ``x`` also becomes concurrent with every output
  place of ``t``;
* iterate to a fixed point.

For non-free-choice nets the result is a conservative over-approximation,
which is the safe direction for the synthesis method.

The *signal concurrency relation* SCR relates a node to a signal when it is
concurrent with some transition of that signal (Definition 3).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.stg.stg import STG


class ConcurrencyRelation:
    """The symmetric concurrency relation over the nodes of an STG."""

    def __init__(self, stg: STG):
        self.stg = stg
        self._concurrent: dict[str, set[str]] = {node: set() for node in stg.net.nodes}
        self._signal_cache: dict[tuple[str, str], bool] = {}

    # ------------------------------------------------------------------ #
    # Construction (used by the computation function)
    # ------------------------------------------------------------------ #

    def _add(self, first: str, second: str) -> bool:
        """Add a symmetric pair; returns True if it was new."""
        if first == second:
            return False
        if second in self._concurrent[first]:
            return False
        self._concurrent[first].add(second)
        self._concurrent[second].add(first)
        return True

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def are_concurrent(self, first: str, second: str) -> bool:
        """True if the two nodes are (conservatively) concurrent."""
        return second in self._concurrent.get(first, ())

    def concurrent_nodes(self, node: str) -> frozenset[str]:
        """All nodes concurrent with ``node``."""
        return frozenset(self._concurrent.get(node, ()))

    def concurrent_places(self, node: str) -> frozenset[str]:
        """Places concurrent with ``node``."""
        return frozenset(
            other for other in self._concurrent.get(node, ())
            if self.stg.net.is_place(other)
        )

    def concurrent_transitions(self, node: str) -> frozenset[str]:
        """Transitions concurrent with ``node``."""
        return frozenset(
            other for other in self._concurrent.get(node, ())
            if self.stg.net.is_transition(other)
        )

    def node_concurrent_with_signal(self, node: str, signal: str) -> bool:
        """Signal concurrency relation SCR (Definition 3).

        True when the node is concurrent with some transition of ``signal``.
        """
        key = (node, signal)
        cached = self._signal_cache.get(key)
        if cached is not None:
            return cached
        result = any(
            self.are_concurrent(node, transition)
            for transition in self.stg.transitions_of_signal(signal)
        )
        self._signal_cache[key] = result
        return result

    def signals_concurrent_with(self, node: str) -> set[str]:
        """All signals concurrent with a node."""
        return {
            signal for signal in self.stg.signal_names
            if self.node_concurrent_with_signal(node, signal)
        }

    def pairs(self) -> set[frozenset[str]]:
        """All concurrent pairs as frozensets."""
        result: set[frozenset[str]] = set()
        for node, others in self._concurrent.items():
            for other in others:
                result.add(frozenset((node, other)))
        return result

    def transition_pairs(self) -> set[frozenset[str]]:
        """Concurrent transition-transition pairs only."""
        net = self.stg.net
        return {
            pair for pair in self.pairs()
            if all(net.is_transition(node) for node in pair)
        }

    def place_table(self) -> dict[str, dict[str, bool]]:
        """Place-versus-place concurrency table (Table II of the paper)."""
        places = self.stg.places
        return {
            row: {column: self.are_concurrent(row, column) for column in places}
            for row in places
        }


def compute_concurrency_relation(
    stg: STG,
    max_iterations: Optional[int] = None,
) -> ConcurrencyRelation:
    """Fixed-point computation of the concurrency relation.

    Complexity is polynomial in the size of the net: every pair of nodes is
    inserted at most once and each insertion triggers work proportional to
    the adjacent transitions.
    """
    net = stg.net
    relation = ConcurrencyRelation(stg)
    worklist: deque[tuple[str, str]] = deque()

    def add(first: str, second: str) -> None:
        if relation._add(first, second):
            worklist.append((first, second))

    # Seed: places simultaneously marked initially.
    marked = sorted(net.initial_marking.marked_places)
    for i, first in enumerate(marked):
        for second in marked[i + 1:]:
            add(first, second)
    # Seed: output places of the same transition are simultaneously marked
    # right after it fires.
    for transition in net.transitions:
        outputs = sorted(net.postset(transition))
        for i, first in enumerate(outputs):
            for second in outputs[i + 1:]:
                add(first, second)

    def try_transition(node: str, transition: str) -> None:
        """Apply the inference rule for ``node`` against ``transition``."""
        if node == transition:
            return
        preset = net.preset(transition)
        if node in preset or node in net.postset(transition):
            return
        if not preset:
            return
        if all(relation.are_concurrent(node, place) for place in preset):
            add(node, transition)
            for output in net.postset(transition):
                add(node, output)

    # Initial sweep: nodes concurrent with the initial marking versus the
    # transitions enabled by it are discovered through the worklist; we also
    # need to handle transitions with a single input place that is part of a
    # seeded pair, which the worklist propagation below covers.
    iterations = 0
    while worklist:
        iterations += 1
        if max_iterations is not None and iterations > max_iterations:
            raise RuntimeError("concurrency fixed point did not converge in time")
        first, second = worklist.popleft()
        for node, other in ((first, second), (second, first)):
            if net.is_place(other):
                # ``node`` became concurrent with place ``other``; check the
                # transitions consuming ``other``.
                for transition in net.postset(other):
                    try_transition(node, transition)
    return relation


def concurrency_from_reachability(stg: STG) -> ConcurrencyRelation:
    """Exact concurrency relation extracted from the reachability graph.

    Used as a test oracle for :func:`compute_concurrency_relation` on small
    STGs; exponential in the worst case.
    """
    from repro.petri.reachability import build_reachability_graph

    net = stg.net
    graph = build_reachability_graph(net)
    relation = ConcurrencyRelation(stg)
    for marking in graph:
        marked = sorted(marking.marked_places)
        enabled = sorted(graph.enabled_transitions(marking))
        # place || place
        for i, first in enumerate(marked):
            for second in marked[i + 1:]:
                relation._add(first, second)
        # place || transition: the place stays marked while the transition
        # fires (it is not an input place of the transition).
        for place in marked:
            for transition in enabled:
                if place not in net.preset(transition):
                    relation._add(place, transition)
        # transition || transition (true concurrency: neither disables the
        # other).
        for i, first in enumerate(enabled):
            after_first = net.fire(first, marking)
            for second in enabled[i + 1:]:
                if net.is_enabled(second, after_first):
                    after_second = net.fire(second, marking)
                    if net.is_enabled(first, after_second):
                        relation._add(first, second)
    return relation
