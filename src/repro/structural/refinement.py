"""Cover-function refinement using SM-components (Section VII, Figs. 11–12).

Single-cube approximations of marked regions may be overestimated.  Each
SM-component of an SM-cover describes a partial behaviour of the STG: the
whole reachability set projects onto its places (Property 7).  Therefore the
cover function of a place ``p`` can be refined by intersecting it with the
union of the cover functions of the places of another SM-component that are
concurrent to ``p`` (composition in the net domain corresponds to
intersection in the Boolean domain):

``C(p) := C(p) ∩ ( Σ_{q ∈ SM, q ∥ p or q = p} C(q) )``

A structural coding conflict between two places of an SM-component is *fake*
when one of them has no conflict inside some other SM-component that contains
it (the conflicting binary code is then unreachable).  In that case the other
SM-component is used to refine the cover functions — following the paper, the
refinement is applied to every place of the STG, which is what gives the
better minimization results reported in Section VII-B.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.boolean.cover import Cover
from repro.petri.smcover import StateMachineComponent
from repro.stg.stg import STG
from repro.structural.concurrency import ConcurrencyRelation
from repro.structural.conflicts import StructuralConflict, find_structural_conflicts


@dataclass
class RefinementResult:
    """Outcome of the refinement loop."""

    cover_functions: dict[str, Cover]
    eliminated_conflicts: list[StructuralConflict] = field(default_factory=list)
    remaining_conflicts: list[StructuralConflict] = field(default_factory=list)
    refining_components: list[StateMachineComponent] = field(default_factory=list)
    passes: int = 0

    @property
    def conflict_free(self) -> bool:
        """True when no structural coding conflict remains."""
        return not self.remaining_conflicts


def refine_place_by_component(
    stg: STG,
    place: str,
    cover_functions: dict[str, Cover],
    component: StateMachineComponent,
    concurrency: ConcurrencyRelation,
) -> Cover:
    """Refinement of one place's cover function by one SM-component (Fig. 11).

    Only the places of the component that can be simultaneously marked with
    ``place`` (concurrent to it, or the place itself) contribute to the sum:
    the marked regions of the others do not intersect MR(place).
    """
    relevant = [
        other for other in component.places
        if other == place or concurrency.are_concurrent(other, place)
    ]
    if not relevant:
        return cover_functions[place]
    union = Cover.empty(stg.signal_names)
    for other in sorted(relevant):
        union = union.union(cover_functions[other])
    return cover_functions[place].intersection(union).with_variables(stg.signal_names)


def place_has_conflict_in_component(
    place: str,
    cover_functions: dict[str, Cover],
    component: StateMachineComponent,
) -> bool:
    """True if ``place`` conflicts with another place of the component."""
    own = cover_functions[place]
    for other in component.places:
        if other == place:
            continue
        if own.intersects_cover(cover_functions[other]):
            return True
    return False


def find_refining_component(
    place: str,
    cover_functions: dict[str, Cover],
    sm_cover: list[StateMachineComponent],
) -> Optional[StateMachineComponent]:
    """Find an SM-component containing ``place`` with no conflicts for it.

    Such a component witnesses that the conflicting codes of ``place`` are
    unreachable and can be used to refine the other cover functions
    (Section VII-B1).
    """
    for component in sm_cover:
        if place not in component.places:
            continue
        if not place_has_conflict_in_component(place, cover_functions, component):
            return component
    return None


def refine_cover_functions(
    stg: STG,
    cover_functions: dict[str, Cover],
    sm_cover: list[StateMachineComponent],
    concurrency: ConcurrencyRelation,
    max_passes: int = 4,
) -> RefinementResult:
    """The refinement loop of Fig. 12.

    Repeatedly: detect structural coding conflicts; for every conflicting
    place that is conflict-free inside some other SM-component of the cover,
    use that component to refine the cover functions of *all* places;
    iterate until no conflicts remain, no further refinement applies, or the
    pass bound is reached.
    """
    current = dict(cover_functions)
    applied: set[frozenset[str]] = set()
    eliminated: list[StructuralConflict] = []
    refining: list[StateMachineComponent] = []
    passes = 0

    while passes < max_passes:
        passes += 1
        conflicts = find_structural_conflicts(stg, current, sm_cover)
        if not conflicts:
            break
        progress = False
        for conflict in conflicts:
            for place in sorted(conflict.places):
                component = find_refining_component(place, current, sm_cover)
                if component is None:
                    continue
                if component.places in applied:
                    continue
                applied.add(component.places)
                refining.append(component)
                # Refine every place of the STG by the witnessing component
                # (the paper's general application of refinement).
                updated: dict[str, Cover] = {}
                for other in stg.places:
                    refined = refine_place_by_component(
                        stg, other, current, component, concurrency
                    )
                    updated[other] = refined
                    if len(refined.cubes) != len(current[other].cubes) or \
                            not current[other].contains_cover(refined) or \
                            not refined.contains_cover(current[other]):
                        progress = True
                current = updated
                if progress:
                    eliminated.append(conflict)
                    break
            if progress:
                break
        if not progress:
            break

    remaining = find_structural_conflicts(stg, current, sm_cover)
    return RefinementResult(
        cover_functions=current,
        eliminated_conflicts=eliminated,
        remaining_conflicts=remaining,
        refining_components=refining,
        passes=passes,
    )
