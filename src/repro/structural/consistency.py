"""Structural consistency verification (Section V-B, Fig. 9).

An STG is consistent when it has no autoconcurrent transitions and all its
firing sequences are switchover correct.  Both conditions are verified
structurally:

* nonautoconcurrency — no transition is concurrent with its own signal
  (checked on the signal concurrency relation);
* switchover correctness — every pair of adjacent transitions of the same
  signal (the structural ``next`` relation of Properties 4/5) has alternating
  switching directions.

The combined algorithm mirrors Fig. 9: necessary-condition adjacency is
computed first (lower complexity); the sufficient-condition search based on
forward reduction is only run when requested or when a signal's adjacency
looks incomplete (a transition with no successors in a live STG).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.stg.stg import STG
from repro.structural.adjacency import (
    structural_next_relation,
    structural_next_relation_checked,
)
from repro.structural.concurrency import ConcurrencyRelation, compute_concurrency_relation


@dataclass
class StructuralConsistencyReport:
    """Result of the structural consistency verification."""

    consistent: bool
    autoconcurrent_transitions: list[str] = field(default_factory=list)
    switchover_violations: list[tuple[str, str]] = field(default_factory=list)
    incomplete_transitions: list[str] = field(default_factory=list)
    next_relation: dict[str, set[str]] = field(default_factory=dict)
    used_sufficient_conditions: bool = False

    def __bool__(self) -> bool:
        return self.consistent


def find_autoconcurrent_transitions(
    stg: STG, concurrency: ConcurrencyRelation
) -> list[str]:
    """Transitions concurrent with some other transition of their own signal."""
    offending: list[str] = []
    for transition in stg.transitions:
        signal = stg.signal_of(transition)
        for other in stg.transitions_of_signal(signal):
            if other == transition:
                continue
            if concurrency.are_concurrent(transition, other):
                offending.append(transition)
                break
    return offending


def find_switchover_violations(
    stg: STG, next_relation: dict[str, set[str]]
) -> list[tuple[str, str]]:
    """Adjacent same-signal transitions with non-alternating directions."""
    violations: list[tuple[str, str]] = []
    for transition, successors in next_relation.items():
        direction = stg.direction_of(transition)
        if direction not in "+-":
            continue
        for successor in successors:
            successor_direction = stg.direction_of(successor)
            if successor_direction not in "+-":
                continue
            if successor_direction == direction:
                violations.append((transition, successor))
    return violations


def check_consistency_structural(
    stg: STG,
    concurrency: Optional[ConcurrencyRelation] = None,
    use_sufficient_conditions: bool = False,
) -> StructuralConsistencyReport:
    """Structural consistency verification of a free-choice STG (Fig. 9).

    Parameters
    ----------
    use_sufficient_conditions:
        When True, the adjacency relation is recomputed with the
        forward-reduction based sufficient conditions (Property 5) for the
        signals whose necessary-condition adjacency looks incomplete.  The
        paper reports that for all practical benchmarks the necessary
        conditions already imply sufficiency, so this defaults to False.
    """
    if concurrency is None:
        concurrency = compute_concurrency_relation(stg)

    autoconcurrent = find_autoconcurrent_transitions(stg, concurrency)

    next_relation = structural_next_relation(stg, concurrency)
    incomplete = [
        transition
        for transition, successors in next_relation.items()
        if not successors and len(stg.transitions_of_signal(stg.signal_of(transition))) > 1
    ]
    used_sufficient = False
    if use_sufficient_conditions and incomplete:
        used_sufficient = True
        refined = structural_next_relation_checked(stg, concurrency, incomplete)
        for transition, successors in refined.items():
            next_relation[transition] |= successors

    switchover = find_switchover_violations(stg, next_relation)

    consistent = not autoconcurrent and not switchover
    return StructuralConsistencyReport(
        consistent=consistent,
        autoconcurrent_transitions=autoconcurrent,
        switchover_violations=switchover,
        incomplete_transitions=incomplete,
        next_relation=next_relation,
        used_sufficient_conditions=used_sufficient,
    )
