"""Structural coding conflicts (Definition 11).

For a one-token SM-component, the marked regions of its places partition the
reachable markings (Property 7).  If the cover cubes of two places of the
same SM-component intersect, then either the cubes overestimate their marked
regions or two reachable markings share a binary code.  An STG free of
structural coding conflicts for some SM-cover has accurate enough
approximations for synthesis (Properties 12 and 13) and also satisfies USC.

This module detects the conflicts; the refinement of Section VII
(:mod:`repro.structural.refinement`) tries to eliminate the fake ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.boolean.cover import Cover
from repro.petri.smcover import StateMachineComponent
from repro.stg.stg import STG


@dataclass(frozen=True)
class StructuralConflict:
    """A pair of places of one SM-component with intersecting cover functions."""

    component: StateMachineComponent
    first: str
    second: str

    @property
    def places(self) -> frozenset[str]:
        """The two conflicting places."""
        return frozenset((self.first, self.second))

    def __repr__(self) -> str:
        return f"StructuralConflict({self.first}, {self.second})"


def find_structural_conflicts(
    stg: STG,
    cover_functions: dict[str, Cover],
    sm_cover: list[StateMachineComponent],
    places: Optional[set[str]] = None,
) -> list[StructuralConflict]:
    """All structural coding conflicts of an STG over an SM-cover.

    ``places`` optionally restricts the report to conflicts involving at
    least one of the given places (used when only some cover functions are
    of interest).
    """
    del stg  # the check only needs the cover functions and the SM-cover
    conflicts: list[StructuralConflict] = []
    seen: set[tuple[frozenset[str], frozenset[str]]] = set()
    for component in sm_cover:
        members = sorted(component.places)
        for i, first in enumerate(members):
            for second in members[i + 1:]:
                if places is not None and first not in places and second not in places:
                    continue
                cover_first = cover_functions.get(first)
                cover_second = cover_functions.get(second)
                if cover_first is None or cover_second is None:
                    continue
                if cover_first.intersects_cover(cover_second):
                    key = (component.places, frozenset((first, second)))
                    if key in seen:
                        continue
                    seen.add(key)
                    conflicts.append(StructuralConflict(component, first, second))
    return conflicts


def conflicting_places(conflicts: list[StructuralConflict]) -> set[str]:
    """The set of places involved in at least one conflict."""
    result: set[str] = set()
    for conflict in conflicts:
        result |= conflict.places
    return result


def conflicts_of_place(
    conflicts: list[StructuralConflict], place: str
) -> list[StructuralConflict]:
    """The conflicts involving a given place."""
    return [conflict for conflict in conflicts if place in conflict.places]


def is_conflict_free(
    stg: STG,
    cover_functions: dict[str, Cover],
    sm_cover: list[StateMachineComponent],
) -> bool:
    """True if the STG has no structural coding conflicts over the SM-cover."""
    return not find_structural_conflicts(stg, cover_functions, sm_cover)
