"""Marked regions and their single-cube approximations (Section V-C/D).

The marked region MR(p) of a place is the set of reachable markings in which
the place carries a token (Definition 6).  Its binary codes are approximated
by a single *cover cube* (Lemma 10): a signal concurrent to the place
contributes no literal (its value can change while the place is marked); a
signal non-concurrent to the place contributes the literal corresponding to
its (constant) value inside the marked region, which is determined by the
*interleave relation* — the direction of the signal transition after which
the place can become marked without any further transition of the signal.

All computations are graph searches on the STG structure restricted by the
concurrency relation; nothing touches the reachability graph.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.boolean.cube import Cube
from repro.stg.stg import STG
from repro.structural.concurrency import ConcurrencyRelation, compute_concurrency_relation


def _nodes_reached_without_signal(
    stg: STG,
    signal: str,
    sources: list[str],
    concurrency: Optional[ConcurrencyRelation] = None,
) -> set[str]:
    """Nodes reachable from ``sources`` without traversing a ``signal``
    transition (the sources themselves may be transitions of the signal —
    their own firing is the starting point and is allowed).

    When a concurrency relation is given, the walk only traverses places
    non-concurrent to the signal — the necessary path condition of
    Property 4, which prunes structurally present but unrealizable paths and
    is what keeps the cover cubes tight.
    """
    net = stg.net
    visited: set[str] = set()
    frontier: deque[str] = deque()
    for source in sources:
        for node in net.postset(source):
            frontier.append(node)
    while frontier:
        node = frontier.popleft()
        if node in visited:
            continue
        visited.add(node)
        if net.is_transition(node):
            if stg.signal_of(node) == signal:
                continue  # stop: a transition of the signal changes its value
        elif concurrency is not None and concurrency.node_concurrent_with_signal(
            node, signal
        ):
            # The place is still recorded as reached (its value contribution
            # is irrelevant because concurrent places carry no literal), but
            # paths through it are not necessarily realizable without firing
            # the signal, so the walk does not continue past it.
            continue
        for successor in net.postset(node):
            if successor not in visited:
                frontier.append(successor)
    return visited


def signal_value_at_places(
    stg: STG,
    signal: str,
    initial_value: Optional[int] = None,
    concurrency: Optional[ConcurrencyRelation] = None,
) -> dict[str, Optional[int]]:
    """The (structural) value of ``signal`` while each place is marked.

    For every place the set of possible values is accumulated from:

    * the target value of every ``signal`` transition from which the place is
      reachable without crossing another ``signal`` transition (the place is
      interleaved after that transition);
    * the initial value of the signal, if the place can be marked before any
      transition of the signal fires (it is reachable from the initially
      marked places without crossing a ``signal`` transition, or is itself
      initially marked).

    Places with a single possible value get that value; places with no or
    several possible values get ``None`` (don't-care in the cover cube).
    Consistent STGs never produce several values for a place non-concurrent
    to the signal (Property 9).
    """
    possible: dict[str, set[int]] = {place: set() for place in stg.places}

    # Values imposed by preceding signal transitions.
    for transition in stg.transitions_of_signal(signal):
        label = stg.label(transition)
        if label.direction not in "+-":
            continue
        reached = _nodes_reached_without_signal(stg, signal, [transition], concurrency)
        for node in reached:
            if node in possible:
                possible[node].add(label.target_value)

    # Values imposed by the initial marking.  The walk follows the same
    # Property-4 restriction as the walks from the signal transitions: it
    # only continues past places non-concurrent to the signal (including the
    # initially marked seed places).
    if initial_value is not None:
        marked = sorted(stg.initial_marking.marked_places)
        initially_reachable = set(marked)
        net = stg.net
        frontier: deque[str] = deque()
        for place in marked:
            if concurrency is not None and concurrency.node_concurrent_with_signal(
                place, signal
            ):
                continue
            for node in net.postset(place):
                frontier.append(node)
        visited: set[str] = set()
        while frontier:
            node = frontier.popleft()
            if node in visited:
                continue
            visited.add(node)
            if net.is_transition(node):
                if stg.signal_of(node) == signal:
                    continue
            else:
                initially_reachable.add(node)
                if concurrency is not None and concurrency.node_concurrent_with_signal(
                    node, signal
                ):
                    continue
            for successor in net.postset(node):
                if successor not in visited:
                    frontier.append(successor)
        for place in initially_reachable:
            possible[place].add(initial_value)

    result: dict[str, Optional[int]] = {}
    for place, values in possible.items():
        if len(values) == 1:
            result[place] = next(iter(values))
        else:
            result[place] = None
    return result


def structural_initial_values(
    stg: STG,
    concurrency: Optional[ConcurrencyRelation] = None,
) -> dict[str, int]:
    """Infer the initial binary value of every signal structurally.

    The value is 0 when a rising transition of the signal is reachable from
    the initial marking without crossing another transition of the signal,
    and 1 when a falling transition is.  Declared values take precedence;
    signals whose first transition cannot be determined default to 0.

    The search only traverses places non-concurrent to the signal (the
    Property-4 path restriction) so that unrealizable structural paths do
    not contribute a spurious direction.
    """
    values = dict(stg.initial_values)
    net = stg.net
    marked = sorted(stg.initial_marking.marked_places)
    for signal in stg.signal_names:
        if signal in values:
            continue
        first_directions: set[str] = set()
        visited: set[str] = set()
        frontier: deque[str] = deque(marked)
        while frontier:
            node = frontier.popleft()
            if node in visited:
                continue
            visited.add(node)
            if net.is_transition(node):
                if stg.signal_of(node) == signal:
                    direction = stg.direction_of(node)
                    if direction in "+-":
                        first_directions.add(direction)
                    continue
            elif concurrency is not None and concurrency.node_concurrent_with_signal(
                node, signal
            ):
                continue
            for successor in net.postset(node):
                if successor not in visited:
                    frontier.append(successor)
        if first_directions == {"+"}:
            values[signal] = 0
        elif first_directions == {"-"}:
            values[signal] = 1
        else:
            values[signal] = 0
    return values


def compute_cover_cubes(
    stg: STG,
    concurrency: Optional[ConcurrencyRelation] = None,
    initial_values: Optional[dict[str, int]] = None,
    signals: Optional[list[str]] = None,
) -> dict[str, Cube]:
    """The single-cube approximation of every marked region (Lemma 10).

    Returns a mapping ``place -> Cube`` over the signal variables.  The cube
    for MR(p) has, for every signal non-concurrent to ``p``, the literal of
    the signal's constant value inside MR(p); signals concurrent to ``p``
    contribute no literal.
    """
    if concurrency is None:
        concurrency = compute_concurrency_relation(stg)
    if initial_values is None:
        initial_values = structural_initial_values(stg, concurrency)
    selected = signals if signals is not None else stg.signal_names

    literals: dict[str, dict[str, int]] = {place: {} for place in stg.places}
    for signal in selected:
        values = signal_value_at_places(
            stg, signal, initial_values.get(signal), concurrency
        )
        for place in stg.places:
            if concurrency.node_concurrent_with_signal(place, signal):
                continue  # value changes while the place is marked
            value = values.get(place)
            if value is not None:
                literals[place][signal] = value
    return {place: Cube(assignment) for place, assignment in literals.items()}


def cover_cube_table(
    stg: STG,
    cubes: dict[str, Cube],
    signal_order: Optional[list[str]] = None,
) -> dict[str, str]:
    """Positional-cube strings for all places (Table III of the paper)."""
    order = signal_order if signal_order is not None else stg.signal_names
    return {place: cube.to_string(order) for place, cube in cubes.items()}
