"""Structural approximation of signal regions (Section VI).

The approximation of each signal region consists of a *domain* (places and
transitions of the STG) and a *cover function* per node.  Excitation regions
are approximated by the intersection of the cover functions of the input
places of the transition; quiescent regions by the union of the cover
functions of the places in the quiescent place set, where boundary places
(input places of the successor transitions) have the successor excitation
covers subtracted to avoid overestimating the quiescent region.

The overall generation follows the four steps listed at the start of
Section VII:

1. compute the domains and the initial (single-cube) cover functions of the
   places;
2. refine the cover functions when structural coding conflicts exist
   (delegated to :mod:`repro.structural.refinement`);
3. build the cover functions of the transitions (excitation regions);
4. recompute the cover functions of the boundary places of every quiescent
   region by subtracting the successor excitation covers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.stg.stg import STG
from repro.structural.adjacency import structural_next_relation
from repro.structural.concurrency import ConcurrencyRelation, compute_concurrency_relation
from repro.structural.covercube import compute_cover_cubes, structural_initial_values
from repro.structural.qps import compute_backward_place_sets, compute_qps


@dataclass
class SignalRegionApproximation:
    """Cover functions approximating the signal regions of an STG."""

    stg: STG
    concurrency: ConcurrencyRelation
    cover_functions: dict[str, Cover]
    place_cubes: dict[str, Cube]
    next_relation: dict[str, set[str]]
    qps: dict[str, set[str]]
    bps: dict[str, set[str]] = field(default_factory=dict)
    initial_values: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Region-cover memoisation
    #
    # The synthesis engine asks for the same ER/QR/GER/GQR covers many times
    # per signal (per-region expansion, merged covers, monotonicity checks).
    # All of them are pure functions of the fields, so they are memoised and
    # the cache is dropped whenever a field they depend on is reassigned
    # (the engine replaces ``cover_functions`` after refinement).
    # ------------------------------------------------------------------ #

    def __setattr__(self, name: str, value) -> None:
        if name in ("cover_functions", "qps", "bps", "next_relation", "stg"):
            self.__dict__.pop("_region_cache", None)
        object.__setattr__(self, name, value)

    def _cache(self) -> dict:
        return self.__dict__.setdefault("_region_cache", {})

    # ------------------------------------------------------------------ #
    # Covers of individual regions
    # ------------------------------------------------------------------ #

    def place_cover(self, place: str) -> Cover:
        """The (possibly refined) cover function of a place's marked region."""
        return self.cover_functions[place]

    def _signal_value_cube(self, transition: str, after_firing: bool) -> Optional[Cube]:
        """Cube fixing the transition's own signal value before/after firing.

        Consistency implies that every marking of ER(a+) has ``a = 0`` and
        every marking of QR(a+) has ``a = 1``; anchoring the covers with this
        literal removes the overestimation introduced by places whose cube
        leaves the signal unconstrained.
        """
        label = self.stg.label(transition)
        if label.direction not in "+-":
            return None
        value = label.target_value if after_firing else label.source_value
        return Cube({label.signal: value})

    def er_cover(self, transition: str) -> Cover:
        """Cover of the excitation region ER(t).

        The intersection of the cover functions of the input places of the
        transition (the marked regions whose simultaneous marking enables
        it), anchored with the signal's pre-firing value.
        """
        cache = self._cache()
        key = ("er", transition)
        cached = cache.get(key)
        if cached is not None:
            return cached
        result = self._er_cover_uncached(transition)
        cache[key] = result
        return result

    def _er_cover_uncached(self, transition: str) -> Cover:
        preset = sorted(self.stg.net.preset(transition))
        if not preset:
            return Cover.universe(self.stg.signal_names)
        result = self.cover_functions[preset[0]]
        for place in preset[1:]:
            result = result.intersection(self.cover_functions[place])
        anchor = self._signal_value_cube(transition, after_firing=False)
        if anchor is not None:
            result = result.intersect_cube(anchor)
        return result.with_variables(self.stg.signal_names)

    def qr_cover(self, transition: str, restricted: bool = False) -> Cover:
        """Cover of the quiescent region QR(t) (or the restricted QR).

        The union of the cover functions of the places in QPS(t); boundary
        places (input places of a successor transition of the signal) have
        the successor's excitation cover subtracted.  With
        ``restricted=True`` the places shared with the QPS of other
        transitions of the signal are excluded (equation (4) domain).
        """
        cache = self._cache()
        key = ("qr", transition, restricted)
        cached = cache.get(key)
        if cached is not None:
            return cached
        result = self._qr_cover_uncached(transition, restricted)
        cache[key] = result
        return result

    def _qr_cover_uncached(self, transition: str, restricted: bool) -> Cover:
        signal = self.stg.signal_of(transition)
        places = set(self.qps.get(transition, set()))
        if restricted:
            for other in self.stg.transitions_of_signal(signal):
                if other == transition:
                    continue
                places -= self.qps.get(other, set())
        successors = self.next_relation.get(transition, set())
        boundary: dict[str, set[str]] = {}
        for successor in successors:
            for place in self.stg.net.preset(successor):
                if place in places:
                    boundary.setdefault(place, set()).add(successor)
        result = Cover.empty(self.stg.signal_names)
        for place in sorted(places):
            cover = self.cover_functions[place]
            for successor in boundary.get(place, ()):
                cover = cover.sharp(self.er_cover(successor))
            result = result.union(cover)
        anchor = self._signal_value_cube(transition, after_firing=True)
        if anchor is not None:
            result = result.intersect_cube(anchor)
        # Quiescent-region markings never enable a successor transition of the
        # signal, so (under CSC) the codes of the successor excitation regions
        # can be removed globally — this eliminates the overestimation that
        # reaches the boundary through places of concurrent branches.
        for successor in successors:
            result = result.sharp(self.er_cover(successor))
        return result.with_variables(self.stg.signal_names)

    def br_cover(self, transition: str) -> Cover:
        """Cover of the backward quiescent region BR(t) (Appendix E)."""
        cache = self._cache()
        key = ("br", transition)
        cached = cache.get(key)
        if cached is not None:
            return cached
        result = self._br_cover_uncached(transition)
        cache[key] = result
        return result

    def _br_cover_uncached(self, transition: str) -> Cover:
        places = set(self.bps.get(transition, set()))
        predecessors = {
            prev for prev, nexts in self.next_relation.items()
            if transition in nexts
        }
        boundary: dict[str, set[str]] = {}
        for predecessor in predecessors:
            for place in self.stg.net.postset(predecessor):
                if place in places:
                    boundary.setdefault(place, set()).add(predecessor)
        result = Cover.empty(self.stg.signal_names)
        for place in sorted(places):
            cover = self.cover_functions[place]
            result = result.union(cover)
        # The excitation region of the transition itself is not part of BR,
        # and every marking of BR carries the signal's pre-firing value.
        result = result.sharp(self.er_cover(transition))
        anchor = self._signal_value_cube(transition, after_firing=False)
        if anchor is not None:
            result = result.intersect_cube(anchor)
        return result.with_variables(self.stg.signal_names)

    # ------------------------------------------------------------------ #
    # Generalized regions
    # ------------------------------------------------------------------ #

    def ger_cover(self, signal: str, direction: str) -> Cover:
        """Cover of the generalized excitation region GER(signal direction)."""
        cache = self._cache()
        key = ("ger", signal, direction)
        cached = cache.get(key)
        if cached is None:
            cached = Cover.empty(self.stg.signal_names)
            for transition in self.stg.transitions_by_direction(signal, direction):
                cached = cached.union(self.er_cover(transition))
            cache[key] = cached
        return cached

    def gqr_cover(self, signal: str, value: int, restricted: bool = False) -> Cover:
        """Cover of the generalized quiescent region GQR(signal = value)."""
        cache = self._cache()
        key = ("gqr", signal, value, restricted)
        cached = cache.get(key)
        if cached is None:
            direction = "+" if value == 1 else "-"
            cached = Cover.empty(self.stg.signal_names)
            for transition in self.stg.transitions_by_direction(signal, direction):
                cached = cached.union(self.qr_cover(transition, restricted=restricted))
            cache[key] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Sets used by the synthesis correctness checks (Section VIII-B)
    # ------------------------------------------------------------------ #

    def set_function_on_set(self, signal: str) -> Cover:
        """On-set required for the set function of a signal: GER(signal+)."""
        return self.ger_cover(signal, "+")

    def set_function_off_set(self, signal: str) -> Cover:
        """Off-set of the set function: GER(signal-) ∪ GQR(signal=0)."""
        return self.ger_cover(signal, "-").union(self.gqr_cover(signal, 0))

    def reset_function_on_set(self, signal: str) -> Cover:
        """On-set required for the reset function of a signal: GER(signal-)."""
        return self.ger_cover(signal, "-")

    def reset_function_off_set(self, signal: str) -> Cover:
        """Off-set of the reset function: GER(signal+) ∪ GQR(signal=1)."""
        return self.ger_cover(signal, "+").union(self.gqr_cover(signal, 1))

    def next_state_on_set(self, signal: str) -> Cover:
        """On-set of the next-state function: GER(signal+) ∪ GQR(signal=1)."""
        return self.ger_cover(signal, "+").union(self.gqr_cover(signal, 1))

    def next_state_off_set(self, signal: str) -> Cover:
        """Off-set of the next-state function: GER(signal-) ∪ GQR(signal=0)."""
        return self.ger_cover(signal, "-").union(self.gqr_cover(signal, 0))


def approximate_signal_regions(
    stg: STG,
    concurrency: Optional[ConcurrencyRelation] = None,
    cover_functions: Optional[dict[str, Cover]] = None,
    initial_values: Optional[dict[str, int]] = None,
    compute_backward: bool = True,
) -> SignalRegionApproximation:
    """Build the structural approximation of all signal regions of an STG.

    ``cover_functions`` may carry refined (multi-cube) covers produced by
    :func:`repro.structural.refinement.refine_cover_functions`; when omitted,
    the single-cube approximations of Lemma 10 are used.
    """
    if concurrency is None:
        concurrency = compute_concurrency_relation(stg)
    if initial_values is None:
        initial_values = structural_initial_values(stg, concurrency)
    place_cubes = compute_cover_cubes(stg, concurrency, initial_values)
    if cover_functions is None:
        cover_functions = {
            place: Cover([cube], stg.signal_names)
            for place, cube in place_cubes.items()
        }
    next_relation = structural_next_relation(stg, concurrency)
    qps = compute_qps(stg, next_relation=next_relation)
    bps = (
        compute_backward_place_sets(stg, next_relation=next_relation)
        if compute_backward
        else {}
    )
    return SignalRegionApproximation(
        stg=stg,
        concurrency=concurrency,
        cover_functions=cover_functions,
        place_cubes=place_cubes,
        next_relation=next_relation,
        qps=qps,
        bps=bps,
        initial_values=initial_values,
    )
