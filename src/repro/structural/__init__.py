"""Structural analysis and approximation engine (the paper's contribution).

The modules in this package analyse an STG *without enumerating its
reachability graph*:

* :mod:`concurrency` — the concurrency relation between nodes and the signal
  concurrency relation (Section V-A), computed by the polynomial fixed-point
  algorithm for live and safe free-choice nets;
* :mod:`adjacency` — the structural ``next``/``prev`` relation between
  transitions of the same signal (Properties 4 and 5), including forward
  reduction;
* :mod:`consistency` — structural consistency verification (Fig. 9);
* :mod:`covercube` — marked regions and their single-cube approximations
  (Definition 6, Lemma 10), via the interleave relation;
* :mod:`qps` — quiescent place sets (Fig. 10);
* :mod:`approximation` — cover functions approximating ER and QR
  (Section VI);
* :mod:`conflicts` — structural coding conflicts over an SM-cover
  (Definition 11);
* :mod:`refinement` — cover-function refinement using SM-components
  (Section VII, Figs. 11–12);
* :mod:`csc` — structural CSC detection (Theorems 14 and 15).
"""

from repro.structural.concurrency import ConcurrencyRelation, compute_concurrency_relation
from repro.structural.adjacency import structural_next_relation, forward_reduction
from repro.structural.consistency import check_consistency_structural, StructuralConsistencyReport
from repro.structural.covercube import compute_cover_cubes, structural_initial_values
from repro.structural.qps import compute_qps, compute_backward_place_sets
from repro.structural.approximation import SignalRegionApproximation, approximate_signal_regions
from repro.structural.conflicts import StructuralConflict, find_structural_conflicts
from repro.structural.refinement import refine_cover_functions
from repro.structural.csc import check_csc_structural

__all__ = [
    "ConcurrencyRelation",
    "compute_concurrency_relation",
    "structural_next_relation",
    "forward_reduction",
    "check_consistency_structural",
    "StructuralConsistencyReport",
    "compute_cover_cubes",
    "structural_initial_values",
    "compute_qps",
    "compute_backward_place_sets",
    "SignalRegionApproximation",
    "approximate_signal_regions",
    "StructuralConflict",
    "find_structural_conflicts",
    "refine_cover_functions",
    "check_csc_structural",
]
