"""Structural adjacency between transitions of the same signal.

A transition ``t2`` is a *successor* of ``t1`` (``t2 ∈ next(t1)``) when some
feasible sequence fires ``t1`` and later ``t2`` without any other transition
of the same signal in between (Section II-B).  The paper characterizes this
relation structurally:

* **Property 4 (necessary)** — there is a simple path from ``t1`` to ``t2``
  that contains no other transition of the signal and no place concurrent to
  the signal;
* **Property 5 (sufficient)** — additionally, the path must survive the
  *forward reduction* of the net by the signal transitions concurrent to its
  places (this rules out the pathological situation of Fig. 8(a)).

Both characterizations are implemented here: the necessary-condition search
(:func:`structural_next_relation`, linear per transition), the forward
reduction procedure (:func:`forward_reduction`), and the combined search
(:func:`structural_next_relation_checked`) which applies the sufficient
condition when asked for.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.petri.net import PetriNet
from repro.stg.stg import STG
from repro.structural.concurrency import ConcurrencyRelation


def forward_reduction(net: PetriNet, removed_transitions: set[str]) -> PetriNet:
    """Forward reduction ``FR(N, T')`` of the paper (Section V-B).

    Removes the given transitions and then, iteratively, every node that can
    no longer be reached without firing one of them: a transition is removed
    when all of its input places have been removed, and a place is removed
    when all of its input transitions have been removed.  Nodes that are
    initially marked stay (their tokens do not depend on any firing).
    """
    reduced = net.copy(f"{net.name}_fr")
    for transition in removed_transitions:
        if reduced.is_transition(transition):
            reduced.remove_transition(transition)
    marked = set(net.initial_marking.marked_places)
    changed = True
    while changed:
        changed = False
        for transition in list(reduced.transitions):
            preset = reduced.preset(transition)
            if not preset:
                # All input places removed: the transition is unreachable.
                if net.preset(transition):
                    reduced.remove_transition(transition)
                    changed = True
            continue
        for place in list(reduced.places):
            if place in marked:
                continue
            if not reduced.preset(place) and net.preset(place):
                reduced.remove_place(place)
                changed = True
    return reduced


def _allowed_place(
    stg: STG,
    concurrency: ConcurrencyRelation,
    place: str,
    signal: str,
) -> bool:
    """Property 4 condition (1): the place must not be concurrent to the signal."""
    return not concurrency.node_concurrent_with_signal(place, signal)


def _path_successors(
    stg: STG,
    start: str,
    signal: str,
    allowed_place,
    net: Optional[PetriNet] = None,
) -> tuple[set[str], set[str]]:
    """Forward search from ``start`` avoiding other transitions of ``signal``.

    Returns ``(adjacent, visited_places)`` where ``adjacent`` are the
    transitions of ``signal`` reached first along some path, and
    ``visited_places`` the places traversed before reaching them.
    """
    graph = net if net is not None else stg.net
    adjacent: set[str] = set()
    visited: set[str] = set()
    visited_places: set[str] = set()
    frontier: deque[str] = deque()
    if not graph.has_node(start):
        return adjacent, visited_places
    for node in graph.postset(start):
        frontier.append(node)
    while frontier:
        node = frontier.popleft()
        if node in visited:
            continue
        visited.add(node)
        if graph.is_transition(node):
            label = stg.label(node)
            if label.signal == signal:
                adjacent.add(node)
                continue  # do not search past another transition of the signal
            for successor in graph.postset(node):
                if successor not in visited:
                    frontier.append(successor)
        else:
            if not allowed_place(node):
                continue
            visited_places.add(node)
            for successor in graph.postset(node):
                if successor not in visited:
                    frontier.append(successor)
    return adjacent, visited_places


def structural_next_relation(
    stg: STG,
    concurrency: ConcurrencyRelation,
    transitions: Optional[list[str]] = None,
) -> dict[str, set[str]]:
    """``next`` relation based on the necessary conditions (Property 4).

    For every requested transition, a forward breadth-first search through
    places non-concurrent to the signal and transitions of other signals
    collects the signal transitions reached first.  Any path found this way
    can be shortened to a simple path, so graph reachability in the restricted
    net captures exactly the paths of Property 4.
    """
    result: dict[str, set[str]] = {}
    targets = transitions if transitions is not None else stg.transitions
    for transition in targets:
        signal = stg.signal_of(transition)

        def allowed(place: str, signal: str = signal) -> bool:
            return _allowed_place(stg, concurrency, place, signal)

        adjacent, _ = _path_successors(stg, transition, signal, allowed)
        result[transition] = adjacent
    return result


def structural_next_relation_checked(
    stg: STG,
    concurrency: ConcurrencyRelation,
    transitions: Optional[list[str]] = None,
) -> dict[str, set[str]]:
    """``next`` relation using Property 4 plus the sufficient condition.

    The search of Property 4 (restricted to non-concurrent places) is first
    applied.  Additionally, a second search that allows *all* places is run
    on the forward reduction of the net by the signal transitions: paths that
    only exist through concurrent places survive only if they remain
    realizable after removing the transitions of the signal (Property 5).
    Successors found by either search are reported, keeping the relation a
    safe over-approximation of the behavioural ``next``.
    """
    necessary = structural_next_relation(stg, concurrency, transitions)
    result: dict[str, set[str]] = {}
    targets = transitions if transitions is not None else stg.transitions
    for transition in targets:
        signal = stg.signal_of(transition)
        others = set(stg.transitions_of_signal(signal)) - {transition}
        reduced = forward_reduction(stg.net, others)

        def allowed(_place: str) -> bool:
            return True

        extra: set[str] = set()
        if reduced.has_node(transition):
            # Paths through concurrent places, restricted to the reduced net:
            # a successor found here is realizable without firing other
            # transitions of the signal first.
            found, _ = _path_successors(stg, transition, signal, allowed, net=reduced)
            extra = found
        result[transition] = necessary.get(transition, set()) | extra
    return result


def structural_prev_relation(next_relation: dict[str, set[str]]) -> dict[str, set[str]]:
    """``prev`` relation (predecessors) obtained by inverting ``next``."""
    prev: dict[str, set[str]] = {t: set() for t in next_relation}
    for transition, successors in next_relation.items():
        for successor in successors:
            prev.setdefault(successor, set()).add(transition)
    return prev


def interleaved_places(
    stg: STG,
    concurrency: ConcurrencyRelation,
    transition: str,
    successors: Optional[set[str]] = None,
) -> set[str]:
    """Places interleaved between ``transition`` and its ``next`` transitions.

    This is the structural computation behind the quiescent place sets of
    Fig. 10: the places visited by the Property-4 search from the transition
    (before any other transition of the signal is reached).  Unlike the
    adjacency search, places concurrent to the signal are traversed as well —
    they belong to the quiescent-region domain but their cover cube simply
    leaves the signal as a don't-care.
    """
    signal = stg.signal_of(transition)

    def allowed(_place: str) -> bool:
        return True

    found, places = _path_successors(stg, transition, signal, allowed)
    if successors is not None and not successors >= found:
        # The caller supplied a smaller successor set (e.g. after filtering);
        # the place walk is unchanged, only reported for information.
        pass
    return places
